//! Microbenchmarks of the hot kernels (DESIGN.md §4), harness-free and
//! machine-readable.
//!
//! Two kinds of measurement:
//!
//! - **Kernel timings** — SEU scoring (fast path vs naive reference),
//!   label-model fitting, TF-IDF transformation, distance point-to-all,
//!   and parallel LF application.
//! - **The interactive-loop headline** — a recorded 25-round SEU
//!   trajectory is replayed twice: once rebuilding the per-primitive
//!   aggregates from scratch every round (the pre-`Session` behaviour)
//!   and once delta-syncing a single [`SeuAggregates`] cache (what
//!   `Session` does). Scores are asserted identical; the speedup is the
//!   number the `Session` refactor claims.
//!
//! Results are printed as a table and written to `BENCH_kernel.json` so
//! successive PRs can track the perf trajectory.

use std::sync::Arc;
use std::time::Instant;

use nemo_core::config::{ContextualizerConfig, DistanceBackend, IdpConfig};
use nemo_core::contextualizer::Contextualizer;
use nemo_core::idp::{IdpSession, ModelOutputs, RandomSelector, SelectionView};
use nemo_core::oracle::{SimulatedUser, User};
use nemo_core::pipeline::StandardPipeline;
use nemo_core::session::{Session, SeuAggregates};
use nemo_core::seu::SeuSelector;
use nemo_core::{NemoSystem, PoolConfig, RoundJob, SessionPool, SharedArtifacts};
use nemo_data::catalog::{build, DatasetName, Profile};
use nemo_data::Dataset;
use nemo_labelmodel::{FittedLabelModel, GenerativeModel, LabelModel, TripletModel};
use nemo_lf::{LabelMatrix, Lineage, PrimitiveLf};
use nemo_persist::{
    artifact_to_bytes, load_artifact, save_artifact, ArtifactBundle, EncodedCheckpointStore,
};
use nemo_sparse::distance::MIN_SHARDED_ROWS;
use nemo_sparse::{
    CscIndex, CsrMatrix, DenseBackend, DenseMatrix, DetRng, Distance, DistanceScratch, SparseVec,
};
use nemo_text::TfIdf;

/// One timed kernel: median-of-means style summary over repeated calls.
struct BenchResult {
    name: &'static str,
    iters: u32,
    mean_ns: f64,
    min_ns: f64,
}

/// Time `f` adaptively: warm up, then run batches until ~80ms of samples
/// (capped) and report mean/min per-call time.
fn bench<R>(name: &'static str, mut f: impl FnMut() -> R) -> BenchResult {
    // Warmup + calibration: how many calls fit in a batch.
    let start = Instant::now();
    std::hint::black_box(f());
    let once_ns = start.elapsed().as_nanos().max(1) as f64;
    let target_total_ns = 80_000_000.0;
    let iters = (target_total_ns / once_ns).clamp(3.0, 3000.0) as u32;

    let mut min_ns = f64::INFINITY;
    let mut total_ns = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let ns = t.elapsed().as_nanos() as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
    }
    BenchResult { name, iters, mean_ns: total_ns / iters as f64, min_ns }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn prepared_session(ds: &Dataset) -> IdpSession<'_> {
    let config = IdpConfig { n_iterations: 25, eval_every: 25, seed: 1, ..Default::default() };
    let mut session = IdpSession::new(
        ds,
        config,
        Box::new(RandomSelector),
        Box::new(SimulatedUser::default()),
        Box::new(StandardPipeline),
    );
    for _ in 0..25 {
        session.step();
    }
    session
}

fn kernel_benches(ds: &Dataset, results: &mut Vec<BenchResult>) {
    let session = prepared_session(ds);
    let excluded = vec![false; ds.train.n()];
    let view = SelectionView {
        ds,
        lineage: session.lineage(),
        matrix: session.matrix(),
        outputs: session.outputs(),
        excluded: &excluded,
        iteration: 25,
        aggs: None,
    };
    let selector = SeuSelector::new();

    results.push(bench("seu_fast_path_full_pool", || {
        let aggs = SeuSelector::primitive_aggregates(&view);
        let mut best = f64::NEG_INFINITY;
        for x in 0..ds.train.n() {
            best = best.max(selector.expected_utility(&view, &aggs, x));
        }
        best
    }));

    results.push(bench("seu_naive_100_examples", || {
        let mut best = f64::NEG_INFINITY;
        for x in 0..100.min(ds.train.n()) {
            best = best.max(selector.expected_utility_naive(&view, x));
        }
        best
    }));

    let matrix = session.matrix().clone();
    results
        .push(bench("labelmodel_triplet_fit", || TripletModel::default().fit(&matrix, [0.5, 0.5])));
    results
        .push(bench("labelmodel_em_fit", || GenerativeModel::default().fit(&matrix, [0.5, 0.5])));

    // Distance engine: naive row-major scan vs the inverted-index kernel,
    // both with reused output buffers so only kernel work is timed.
    let norms = ds.train.features.sq_norms().to_vec();
    let mut out = Vec::new();
    let mut pivot = 0usize;
    results.push(bench("distance_point_to_all_cosine", || {
        pivot = (pivot + 1) % ds.train.n();
        Distance::Cosine.sparse_point_to_all_into(ds.train.features.csr(), pivot, &norms, &mut out);
        out[pivot]
    }));

    let csc = CscIndex::from_csr(ds.train.features.csr());
    let mut scratch = DistanceScratch::new();
    results.push(bench("distance_point_to_all_indexed", || {
        pivot = (pivot + 1) % ds.train.n();
        Distance::Cosine.sparse_point_to_all_indexed_into(
            ds.train.features.csr(),
            &csc,
            pivot,
            &norms,
            &mut scratch,
            &mut out,
        );
        out[pivot]
    }));

    // Contextualizer registration: 32 simulated-user LFs registered one at
    // a time through the naive engine (the pre-index behaviour) vs one
    // batched pass through the indexed engine.
    let mut rng = DetRng::new(13);
    let mut user = SimulatedUser::default();
    let mut lineage = Lineage::new();
    let mut x = 0usize;
    let mut guard = 0usize;
    while lineage.len() < 32 && guard < 10_000 {
        guard += 1;
        if let Some(lf) = user.provide_lf(x, ds, &mut rng) {
            lineage.record(lf, x as u32, lineage.len() as u32);
        }
        x = (x + 7) % ds.train.n();
    }
    let naive_cfg = ContextualizerConfig { backend: DistanceBackend::Naive, ..Default::default() };
    results.push(bench("contextualizer_register_per_lf", || {
        let mut ctx = Contextualizer::new(naive_cfg.clone());
        for rec in lineage.tracked() {
            ctx.register(&rec.lf, rec.dev_example, ds);
        }
        ctx.n_registered()
    }));
    results.push(bench("contextualizer_register_batch", || {
        let mut ctx = Contextualizer::new(ContextualizerConfig::default());
        ctx.sync(&lineage, ds);
        ctx.n_registered()
    }));

    // TF-IDF transform over synthetic id-sequences.
    let mut rng = DetRng::new(9);
    let docs: Vec<Vec<u32>> =
        (0..500).map(|_| (0..30).map(|_| rng.index(800) as u32).collect()).collect();
    let model = TfIdf::default().fit(&docs, 800);
    results.push(bench("tfidf_transform_500_docs", || model.transform(&docs)));

    let mut rng = DetRng::new(11);
    let lfs: Vec<PrimitiveLf> = (0..50)
        .map(|_| {
            PrimitiveLf::new(
                rng.index(ds.n_primitives) as u32,
                nemo_lf::Label::from_bool(rng.bernoulli(0.5)),
            )
        })
        .collect();
    results.push(bench("label_matrix_from_50_lfs_parallel", || {
        LabelMatrix::from_lfs(&lfs, &ds.train.corpus)
    }));

    results.push(bench("model_outputs_initial", || ModelOutputs::initial(ds)));
}

/// Replay statistics for one aggregate-maintenance mode.
struct LoopStats {
    total_ns: f64,
    rounds: usize,
    checksum: f64,
}

/// Replay a recorded trajectory of model outputs, performing each round's
/// selection work in one of two modes:
///
/// - **naive** (`incremental = false`): the pre-`Session` path — rebuild
///   the per-primitive aggregates from scratch and score every example
///   through the per-occurrence `expected_utility` loop.
/// - **incremental**: the `Session` engine path — delta-sync the
///   [`SeuAggregates`] cache and score through the per-round
///   [`SeuSelector::score_table`].
fn replay(
    ds: &Dataset,
    trajectory: &[ModelOutputs],
    incremental: bool,
) -> (LoopStats, SeuAggregates) {
    let selector = SeuSelector::new();
    let excluded = vec![false; ds.train.n()];
    let avail: Vec<usize> = (0..ds.train.n()).collect();
    let lineage = nemo_lf::Lineage::new();
    let matrix = LabelMatrix::new(ds.train.n());
    let mut cache = SeuAggregates::new(ds, &trajectory[0]);
    let mut checksum = 0.0;
    let start = Instant::now();
    for outputs in &trajectory[1..] {
        let view = SelectionView {
            ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs,
            excluded: &excluded,
            iteration: 0,
            aggs: None,
        };
        let scores = if incremental {
            cache.sync(ds, outputs);
            selector.scores(&view, cache.aggs(), &avail)
        } else {
            let aggs = SeuSelector::primitive_aggregates(&view);
            avail.iter().map(|&x| selector.expected_utility(&view, &aggs, x)).collect()
        };
        checksum += scores.iter().copied().filter(|s| s.is_finite()).sum::<f64>();
    }
    let total_ns = start.elapsed().as_nanos() as f64;
    (LoopStats { total_ns, rounds: trajectory.len() - 1, checksum }, cache)
}

/// Record a real 25-round SEU trajectory (and its lineage) with the
/// session engine.
fn record_trajectory(ds: &Dataset) -> (Vec<ModelOutputs>, Lineage) {
    let config = IdpConfig { n_iterations: 25, eval_every: 25, seed: 7, ..Default::default() };
    let mut session = Session::new(ds, config);
    let mut selector = SeuSelector::new();
    let mut user = SimulatedUser::default();
    let mut pipeline = StandardPipeline;
    let mut trajectory = vec![session.outputs().clone()];
    for _ in 0..25 {
        session.step(&mut selector, &mut user, &mut pipeline);
        trajectory.push(session.outputs().clone());
    }
    (trajectory, session.lineage().clone())
}

/// Measure aggregate maintenance + full-pool scoring under both modes
/// over a recorded real trajectory.
fn seu_loop_bench(ds: &Dataset, trajectory: &[ModelOutputs]) -> String {
    // Warm both paths once, then measure.
    let _ = replay(ds, trajectory, false);
    let _ = replay(ds, trajectory, true);
    let (naive, _) = replay(ds, trajectory, false);
    let (incr, cache) = replay(ds, trajectory, true);
    assert!(
        (naive.checksum - incr.checksum).abs() <= 1e-9 * naive.checksum.abs().max(1.0),
        "incremental replay diverged: {} vs {}",
        naive.checksum,
        incr.checksum
    );

    let speedup = naive.total_ns / incr.total_ns;
    let (_, deltas) = cache.sync_counts();
    let (dirty_majority, drift_bound) = cache.rebuild_fallback_counts();
    println!(
        "\nSEU interactive-loop aggregate maintenance ({} rounds, full-pool scoring):",
        naive.rounds
    );
    println!("  full rebuild per round : {}", human(naive.total_ns / naive.rounds as f64));
    println!("  incremental delta-sync : {}", human(incr.total_ns / incr.rounds as f64));
    println!(
        "  speedup                : {speedup:.2}x  ({deltas} delta syncs, \
         {} rebuild fallbacks: {dirty_majority} dirty-majority, {drift_bound} drift-bound)",
        dirty_majority + drift_bound,
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Committed numbers show ~4x; gate only the sign so single-core
        // CI noise cannot flake the build.
        assert!(
            incr.total_ns <= naive.total_ns,
            "regression: incremental aggregate sync ({}) slower than full rebuild ({})",
            human(incr.total_ns),
            human(naive.total_ns)
        );
    }

    format!(
        concat!(
            "{{\"rounds\": {}, \"full_rebuild_ns\": {:.0}, \"incremental_ns\": {:.0}, ",
            "\"speedup\": {:.4}, \"delta_syncs\": {}, \"rebuild_fallbacks\": {}, ",
            "\"fallbacks_dirty_majority\": {}, \"fallbacks_drift_bound\": {}}}"
        ),
        naive.rounds,
        naive.total_ns,
        incr.total_ns,
        speedup,
        deltas,
        dirty_majority + drift_bound,
        dirty_majority,
        drift_bound,
    )
}

/// Replay a trajectory scoring the full pool each round through one of
/// the two [`nemo_core::config::SeuScoring`] paths (both on top of the
/// same incremental aggregate sync — the difference under test is purely
/// the scoring).
fn replay_scoring(
    ds: &Dataset,
    trajectory: &[ModelOutputs],
    dirty: bool,
) -> (LoopStats, SeuSelector) {
    let mut selector = SeuSelector::new();
    let excluded = vec![false; ds.train.n()];
    let all: Vec<usize> = (0..ds.train.n()).collect();
    let lineage = nemo_lf::Lineage::new();
    let matrix = LabelMatrix::new(ds.train.n());
    let mut cache = SeuAggregates::new(ds, &trajectory[0]);
    let mut checksum = 0.0;
    let start = Instant::now();
    for outputs in &trajectory[1..] {
        cache.sync(ds, outputs);
        let view = SelectionView {
            ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs,
            excluded: &excluded,
            iteration: 0,
            aggs: Some(&cache),
        };
        checksum += if dirty {
            let scores = selector.scores_cached(&view).expect("aggregates present");
            scores.iter().copied().filter(|s| s.is_finite()).sum::<f64>()
        } else {
            let scores = selector.scores(&view, cache.aggs(), &all);
            scores.iter().copied().filter(|s| s.is_finite()).sum::<f64>()
        };
    }
    let total_ns = start.elapsed().as_nanos() as f64;
    (LoopStats { total_ns, rounds: trajectory.len() - 1, checksum }, selector)
}

/// Synthetic *localized* trajectory: each round perturbs the model state
/// of a handful of examples — the paper's "a development cycle perturbs
/// a handful of primitives" pattern (skip rounds and explorer queries
/// are the degenerate all-clean case).
fn localized_trajectory(ds: &Dataset, start: &ModelOutputs, rounds: usize) -> Vec<ModelOutputs> {
    use nemo_labelmodel::Posterior;
    let mut rng = DetRng::new(23);
    let n = ds.train.n();
    let mut trajectory = vec![start.clone()];
    for _ in 0..rounds {
        let prev = trajectory.last().expect("non-empty");
        let mut p_pos: Vec<f64> = (0..n).map(|i| prev.train_posterior.p_pos(i)).collect();
        let mut probs = prev.train_probs.clone();
        for _ in 0..4 {
            let i = rng.index(n);
            p_pos[i] = 0.01 + 0.98 * rng.uniform();
            probs[i] = rng.uniform();
        }
        trajectory.push(ModelOutputs {
            train_posterior: Posterior::new(p_pos),
            train_probs: probs,
            valid_pred: prev.valid_pred.clone(),
            test_pred: prev.test_pred.clone(),
            chosen_p: None,
        });
    }
    trajectory
}

/// Dirty-set SEU scoring vs the per-round full-pool rescore, on the real
/// session trajectory (dense change: every covered posterior moves each
/// round, so the cache's exact-bail keeps parity) and on the localized
/// trajectory (sparse change: incidence-level delta application wins).
fn seu_dirty_bench(ds: &Dataset, trajectory: &[ModelOutputs]) -> (String, f64, f64) {
    let localized = localized_trajectory(ds, &trajectory[trajectory.len() - 1], 25);

    let measure = |traj: &[ModelOutputs]| {
        let _ = replay_scoring(ds, traj, false);
        let _ = replay_scoring(ds, traj, true);
        let (full, _) = replay_scoring(ds, traj, false);
        let (dirty, sel) = replay_scoring(ds, traj, true);
        assert!(
            (full.checksum - dirty.checksum).abs() <= 1e-9 * full.checksum.abs().max(1.0),
            "dirty-set replay diverged: {} vs {}",
            full.checksum,
            dirty.checksum
        );
        (full, dirty, sel.dirty_stats())
    };
    let (sess_full, sess_dirty, sess_stats) = measure(trajectory);
    let (loc_full, loc_dirty, loc_stats) = measure(&localized);

    let sess_speedup = sess_full.total_ns / sess_dirty.total_ns;
    let loc_speedup = loc_full.total_ns / loc_dirty.total_ns;
    println!("\nDirty-set SEU scoring vs full-pool rescore (same incremental aggregates):");
    println!(
        "  session trajectory   : full {} -> dirty {} per round  ({sess_speedup:.2}x; \
         {} delta rounds, {} exact)",
        human(sess_full.total_ns / sess_full.rounds as f64),
        human(sess_dirty.total_ns / sess_dirty.rounds as f64),
        sess_stats.delta_rounds,
        sess_stats.full_rescores,
    );
    println!(
        "  localized trajectory : full {} -> dirty {} per round  ({loc_speedup:.2}x; \
         {} incidence updates vs {} full-rescore slots)",
        human(loc_full.total_ns / loc_full.rounds as f64),
        human(loc_dirty.total_ns / loc_dirty.rounds as f64),
        loc_stats.incidence_updates,
        loc_stats.delta_rounds as usize * ds.train.corpus.total_postings(),
    );

    let json = format!(
        concat!(
            "{{\"rounds\": {}, \"session_full_rescore_ns\": {:.0}, \"session_dirty_ns\": {:.0}, ",
            "\"session_speedup\": {:.4}, \"session_delta_rounds\": {}, ",
            "\"session_exact_rounds\": {}, ",
            "\"localized_full_rescore_ns\": {:.0}, \"localized_dirty_ns\": {:.0}, ",
            "\"localized_speedup\": {:.4}, \"localized_incidence_updates\": {}, ",
            "\"localized_rows_refreshed\": {}, \"total_postings\": {}}}"
        ),
        sess_full.rounds,
        sess_full.total_ns,
        sess_dirty.total_ns,
        sess_speedup,
        sess_stats.delta_rounds,
        sess_stats.full_rescores,
        loc_full.total_ns,
        loc_dirty.total_ns,
        loc_speedup,
        loc_stats.incidence_updates,
        loc_stats.rows_refreshed,
        ds.train.corpus.total_postings(),
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Session trajectory: the dense-change bail keeps the dirty path
        // at parity with the full rescore — allow measurement noise only.
        assert!(
            sess_dirty.total_ns <= sess_full.total_ns * 1.25,
            "regression: dirty-set SEU ({}) slower than full rescore ({}) on the session replay",
            human(sess_dirty.total_ns),
            human(sess_full.total_ns)
        );
        assert!(
            loc_dirty.total_ns <= loc_full.total_ns,
            "regression: dirty-set SEU ({}) slower than full rescore ({}) on localized updates",
            human(loc_dirty.total_ns),
            human(loc_full.total_ns)
        );
    }
    // Per-round means for the combined-round summary.
    (
        json,
        sess_full.total_ns / sess_full.rounds as f64,
        sess_dirty.total_ns / sess_dirty.rounds as f64,
    )
}

/// Warm-started vs cold percentile tuning with the EM label model: one
/// *cross-round* tune at the full-lineage state, seeded (or not) from
/// the previous round's per-grid-point fits — exactly the step a
/// contextualized session repeats every iteration, on the lineage the
/// recorded session actually collected.
///
/// The cold reference pairs `WarmStart::Cold` with the plain (Aitken-off)
/// fixed-point EM — the pre-incremental behaviour, the way
/// `DistanceBackend::Naive` preserves the pre-index distance engine. The
/// warm path is the production default: Aitken-accelerated fits, seeded
/// per grid point, run in parallel.
fn tune_p_warm_bench(
    ds: &Dataset,
    lineage: &Lineage,
    results: &mut Vec<BenchResult>,
) -> (String, f64, f64) {
    use nemo_core::config::WarmStart;
    let n_lfs = lineage.len();
    assert!(n_lfs >= 2, "recorded session collected too few LFs");
    let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
    let prev_matrix = LabelMatrix::from_lfs(&lfs[..n_lfs - 1], &ds.train.corpus);
    let matrix = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let warm_model = GenerativeModel::default();
    let cold_model = GenerativeModel { accel: false, ..Default::default() };
    let prior = [0.5, 0.5];

    // Previous round (one LF fewer): capture its per-grid-point seeds.
    let mut prev_ctx = Contextualizer::new(ContextualizerConfig::default());
    prev_ctx.register_batch(&lineage.tracked()[..n_lfs - 1], ds);
    prev_ctx.tune_p(&prev_matrix, ds, &warm_model, prior);
    let seeds: Vec<Vec<f64>> = prev_ctx.warm_seeds().to_vec();

    let mut cold_ctx = Contextualizer::new(ContextualizerConfig {
        warm_start: WarmStart::Cold,
        ..Default::default()
    });
    cold_ctx.sync(lineage, ds);
    let mut warm_ctx = Contextualizer::new(ContextualizerConfig::default());
    warm_ctx.sync(lineage, ds);

    let cold = bench("tune_p_cold_em", || cold_ctx.tune_p(&matrix, ds, &cold_model, prior).p);
    let warm = bench("tune_p_warm_em", || {
        // Restore the previous round's seeds so every timed call is one
        // genuine cross-round warm tune (not a same-matrix refit).
        warm_ctx.set_warm_seeds(seeds.clone());
        warm_ctx.tune_p(&matrix, ds, &warm_model, prior).p
    });

    // EM iteration counts per grid point for the same cross-round step
    // (computed outside the timing loops), plus a fixed-point agreement
    // check: warm + accelerated must land where plain cold lands.
    let p_grid = ContextualizerConfig::default().p_grid;
    let mut iters_cold = 0usize;
    let mut iters_warm = 0usize;
    for (k, &p) in p_grid.iter().enumerate() {
        let refined = cold_ctx.refined_train_matrix(&matrix, p);
        let (fit_cold, ic) = cold_model.fit_em(&refined, prior, None);
        let (fit_warm, iw) = warm_model.fit_em(&refined, prior, seeds.get(k).map(Vec::as_slice));
        for (a, b) in fit_cold.lf_accuracies().iter().zip(fit_warm.lf_accuracies()) {
            assert!(
                (a - b).abs() < 1e-6,
                "warm/accelerated fit diverged from the plain cold fixed point at p={p}: {a} vs {b}"
            );
        }
        iters_cold += ic;
        iters_warm += iw;
    }

    let speedup = cold.mean_ns / warm.mean_ns;
    println!(
        "\nPercentile tuning with the EM label model (cross-round step, {n_lfs} LFs, {} grid points):",
        p_grid.len()
    );
    println!(
        "  cold plain fits        : {} per tune_p  ({iters_cold} EM iterations)",
        human(cold.mean_ns)
    );
    println!(
        "  warm accelerated fits  : {} per tune_p  ({iters_warm} EM iterations)",
        human(warm.mean_ns)
    );
    println!("  speedup                : {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\"lfs\": {}, \"grid_points\": {}, \"cold_ns\": {:.0}, \"warm_ns\": {:.0}, ",
            "\"speedup\": {:.4}, \"em_iters_cold\": {}, \"em_iters_warm\": {}}}"
        ),
        n_lfs,
        p_grid.len(),
        cold.mean_ns,
        warm.mean_ns,
        speedup,
        iters_cold,
        iters_warm,
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        assert!(
            warm.mean_ns <= cold.mean_ns,
            "regression: warm-started tune_p ({}) slower than cold fits ({})",
            human(warm.mean_ns),
            human(cold.mean_ns)
        );
    }
    let (cold_mean, warm_mean) = (cold.mean_ns, warm.mean_ns);
    results.push(cold);
    results.push(warm);
    (json, cold_mean, warm_mean)
}

/// Warm-round refined-matrix construction: the per-grid-point refined
/// train/valid matrices `tune_p` consumes, built for a lineage whose last
/// LF is new this round — the exact refinement workload of every
/// contextualized round after the first.
///
/// - **rebuild** (`RefinementCaching::Rebuild`): refilter every LF column
///   at every grid point (the pre-cache behaviour).
/// - **incremental**: serve the `n−1` previously cached LFs' columns from
///   the cross-round refined-column cache and filter only the new LF's —
///   each timed call first drops the last LF's slots
///   (`invalidate_refined_cache_from`) so it measures a genuine warm
///   round, not a fully cached replay.
///
/// Outputs are asserted bit-identical before timing; with
/// `NEMO_BENCH_ENFORCE` set, an incremental path slower than half the
/// rebuild cost aborts the run (the CI regression guard — the committed
/// numbers show well above the 3× the ROADMAP item claims).
fn refine_cache_bench(ds: &Dataset, lineage: &Lineage, results: &mut Vec<BenchResult>) -> String {
    use nemo_core::config::RefinementCaching;
    let n_lfs = lineage.len();
    let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
    let matrix = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let grid = ContextualizerConfig::default().p_grid.len();

    let mut rebuild_ctx = Contextualizer::new(ContextualizerConfig {
        refinement: RefinementCaching::Rebuild,
        ..Default::default()
    });
    rebuild_ctx.sync(lineage, ds);
    let mut incr_ctx = Contextualizer::new(ContextualizerConfig::default());
    incr_ctx.sync(lineage, ds);

    // Bit-identity check (and cache warm-up for LFs 0..n−1).
    let (rb_train, rb_valid) = rebuild_ctx.refined_grid_matrices(&matrix, ds.valid.n());
    let (in_train, in_valid) = incr_ctx.refined_grid_matrices(&matrix, ds.valid.n());
    for (k, ((a, b), (c, d))) in
        in_train.iter().zip(&rb_train).zip(in_valid.iter().zip(&rb_valid)).enumerate()
    {
        for j in 0..a.n_lfs() {
            assert_eq!(a.column(j).entries(), b.column(j).entries(), "train k={k} j={j}");
            assert_eq!(c.column(j).entries(), d.column(j).entries(), "valid k={k} j={j}");
        }
    }

    let rebuild = bench("refine_grid_rebuild", || {
        rebuild_ctx.refined_grid_matrices(&matrix, ds.valid.n()).0.len()
    });
    let warm = bench("refine_grid_warm", || {
        incr_ctx.invalidate_refined_cache_from(n_lfs - 1);
        incr_ctx.refined_grid_matrices(&matrix, ds.valid.n()).0.len()
    });
    let stats = incr_ctx.refine_cache_stats();
    let speedup = rebuild.mean_ns / warm.mean_ns;
    println!(
        "\nWarm-round refined-matrix construction ({n_lfs} LFs, {grid} grid points, 1 new LF):"
    );
    println!("  full rebuild           : {} per round", human(rebuild.mean_ns));
    println!("  incremental cache      : {} per round", human(warm.mean_ns));
    println!(
        "  speedup                : {speedup:.2}x  ({} hits, {} refilters recorded)",
        stats.hits, stats.refilters
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        assert!(
            warm.mean_ns * 2.0 <= rebuild.mean_ns,
            "regression: incremental refined-matrix cache ({}) not ≥2x faster than rebuild ({})",
            human(warm.mean_ns),
            human(rebuild.mean_ns)
        );
    }
    let json = format!(
        concat!(
            "{{\"lfs\": {}, \"grid_points\": {}, \"rebuild_ns\": {:.0}, ",
            "\"incremental_ns\": {:.0}, \"speedup\": {:.4}, ",
            "\"cache_hits\": {}, \"cache_refilters\": {}}}"
        ),
        n_lfs, grid, rebuild.mean_ns, warm.mean_ns, speedup, stats.hits, stats.refilters,
    );
    results.push(rebuild);
    results.push(warm);
    json
}

/// Copy-on-write matrix assembly: build every grid point's refined
/// train/valid `LabelMatrix` from the contextualizer's cached columns —
/// the serve step of each warm `tune_p` round — two ways:
///
/// - **deep copy**: clone each column's vote vector into the matrix (the
///   pre-CoW `Vec<LfColumn>` storage paid this `O(coverage)` memcpy per
///   `(grid point, LF)` slot, every round);
/// - **shared**: append an `Arc` clone of the cached column
///   ([`LabelMatrix::push_shared`]) — a refcount bump, `O(1)` per slot.
///
/// Outputs are asserted equal (and the shared path pointer-identical to
/// its source) before timing; with `NEMO_BENCH_ENFORCE` set, a shared
/// path slower than half the deep-copy cost aborts the run.
fn matrix_cow_bench(ds: &Dataset, lineage: &Lineage, results: &mut Vec<BenchResult>) -> String {
    let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
    let matrix = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(lineage, ds);
    // Fill the refined-column cache once; the sources below then play the
    // cache's role of handing out columns for assembly.
    let (grid_train, grid_valid) = ctx.refined_grid_matrices(&matrix, ds.valid.n());
    let sources: Vec<&LabelMatrix> = grid_train.iter().chain(&grid_valid).collect();
    let n_columns: usize = sources.iter().map(|m| m.n_lfs()).sum();
    let n_votes: usize =
        sources.iter().flat_map(|m| m.columns().map(nemo_lf::LfColumn::coverage)).sum();

    let assemble_shared = |srcs: &[&LabelMatrix]| {
        let mut total = 0usize;
        for m in srcs {
            let mut out = LabelMatrix::new(m.n_examples());
            for j in 0..m.n_lfs() {
                out.push_shared(Arc::clone(m.shared_column(j)));
            }
            total += out.n_lfs();
        }
        total
    };
    let assemble_deep = |srcs: &[&LabelMatrix]| {
        let mut total = 0usize;
        for m in srcs {
            let mut out = LabelMatrix::new(m.n_examples());
            for j in 0..m.n_lfs() {
                out.push(m.column(j).clone());
            }
            total += out.n_lfs();
        }
        total
    };
    assert_eq!(assemble_shared(&sources), assemble_deep(&sources));
    {
        // Shared assembly must be pointer-identical to its source.
        let mut out = LabelMatrix::new(grid_train[0].n_examples());
        for j in 0..grid_train[0].n_lfs() {
            out.push_shared(Arc::clone(grid_train[0].shared_column(j)));
        }
        assert_eq!(out.shared_columns_with(&grid_train[0]), grid_train[0].n_lfs());
    }

    let deep = bench("matrix_assemble_deep_copy", || assemble_deep(&sources));
    let shared = bench("matrix_assemble_shared", || assemble_shared(&sources));
    let speedup = deep.mean_ns / shared.mean_ns;
    println!(
        "\nCoW matrix assembly ({} grid matrices, {} columns, {} votes):",
        sources.len(),
        n_columns,
        n_votes
    );
    println!("  deep-copied columns    : {} per round", human(deep.mean_ns));
    println!("  shared Arc handles     : {} per round", human(shared.mean_ns));
    println!("  speedup                : {speedup:.2}x");
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        assert!(
            shared.mean_ns * 2.0 <= deep.mean_ns,
            "regression: shared matrix assembly ({}) not ≥2x faster than deep copies ({})",
            human(shared.mean_ns),
            human(deep.mean_ns)
        );
    }
    let json = format!(
        concat!(
            "{{\"grid_matrices\": {}, \"columns\": {}, \"votes\": {}, ",
            "\"deep_copy_ns\": {:.0}, \"shared_ns\": {:.0}, \"speedup\": {:.4}}}"
        ),
        sources.len(),
        n_columns,
        n_votes,
        deep.mean_ns,
        shared.mean_ns,
        speedup,
    );
    results.push(deep);
    results.push(shared);
    json
}

/// Equivalence-class posterior dedup in `tune_p`, plus the warm-round
/// headline: one cross-round warm tuning round (shared-column matrix
/// assembly + warm parallel fits + class-deduped validation predicts —
/// every production switch) against
///
/// - the same round under [`PosteriorDedup::PerPoint`] (isolating the
///   scoring dedup), and
/// - the full pre-incremental reference round
///   (`Rebuild` + `Cold` + `PerPoint`, plain fixed-point EM).
///
/// Tuned percentiles are asserted identical across all paths (and the
/// class/per-point scores bitwise equal) before timing; with
/// `NEMO_BENCH_ENFORCE` set, the gate requires class scoring no slower
/// than per-point (10% noise margin) and the production round ≥2× the
/// reference round.
fn tune_p_dedup_bench(ds: &Dataset, lineage: &Lineage, results: &mut Vec<BenchResult>) -> String {
    use nemo_core::config::{PosteriorDedup, RefinementCaching, WarmStart};
    let n_lfs = lineage.len();
    assert!(n_lfs >= 2, "recorded session collected too few LFs");
    let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
    let prev_matrix = LabelMatrix::from_lfs(&lfs[..n_lfs - 1], &ds.train.corpus);
    let matrix = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let warm_model = GenerativeModel::default();
    let cold_model = GenerativeModel { accel: false, ..Default::default() };
    let prior = [0.5, 0.5];

    // Previous round (one LF fewer): capture per-grid-point warm seeds.
    let mut prev_ctx = Contextualizer::new(ContextualizerConfig::default());
    prev_ctx.register_batch(&lineage.tracked()[..n_lfs - 1], ds);
    prev_ctx.tune_p(&prev_matrix, ds, &warm_model, prior);
    let seeds: Vec<Vec<f64>> = prev_ctx.warm_seeds().to_vec();

    let mut class_ctx = Contextualizer::new(ContextualizerConfig::default());
    class_ctx.sync(lineage, ds);
    let mut pp_ctx = Contextualizer::new(ContextualizerConfig {
        posterior_dedup: PosteriorDedup::PerPoint,
        ..Default::default()
    });
    pp_ctx.sync(lineage, ds);
    let mut ref_ctx = Contextualizer::new(ContextualizerConfig {
        refinement: RefinementCaching::Rebuild,
        warm_start: WarmStart::Cold,
        posterior_dedup: PosteriorDedup::PerPoint,
        ..Default::default()
    });
    ref_ctx.sync(lineage, ds);

    // Bit-identity across the switches before timing: class vs per-point
    // must agree bitwise; the cold reference reconverges within EM
    // tolerance to the same percentile (as `tests/incremental_paths.rs`
    // pins end-to-end).
    let predicts_class = {
        let before = class_ctx.tune_predicts();
        class_ctx.set_warm_seeds(seeds.clone());
        let t = class_ctx.tune_p(&matrix, ds, &warm_model, prior);
        let predicts = class_ctx.tune_predicts() - before;
        let before_pp = pp_ctx.tune_predicts();
        pp_ctx.set_warm_seeds(seeds.clone());
        let t_pp = pp_ctx.tune_p(&matrix, ds, &warm_model, prior);
        assert_eq!(t.p, t_pp.p, "class/per-point tuned percentile diverged");
        assert_eq!(
            t.valid_score.to_bits(),
            t_pp.valid_score.to_bits(),
            "class/per-point score not bitwise identical"
        );
        assert_eq!(t.train_matrix, t_pp.train_matrix, "class/per-point tuned matrix diverged");
        let t_ref = ref_ctx.tune_p(&matrix, ds, &cold_model, prior);
        assert_eq!(t.p, t_ref.p, "production tuned percentile diverged from the reference round");
        assert_eq!(
            pp_ctx.tune_predicts() - before_pp,
            ContextualizerConfig::default().p_grid.len()
        );
        predicts
    };
    let grid = ContextualizerConfig::default().p_grid.len();

    let class = bench("tune_p_class_dedup", || {
        class_ctx.set_warm_seeds(seeds.clone());
        class_ctx.tune_p(&matrix, ds, &warm_model, prior).p
    });
    let per_point = bench("tune_p_per_point", || {
        pp_ctx.set_warm_seeds(seeds.clone());
        pp_ctx.tune_p(&matrix, ds, &warm_model, prior).p
    });
    let reference =
        bench("tune_p_reference_round", || ref_ctx.tune_p(&matrix, ds, &cold_model, prior).p);

    let dedup_speedup = per_point.mean_ns / class.mean_ns;
    let warm_round_speedup = reference.mean_ns / class.mean_ns;
    println!("\nPercentile-tuning posterior dedup ({n_lfs} LFs, {grid} grid points):");
    println!(
        "  per-point predicts     : {} per tune_p  ({grid} predicts)",
        human(per_point.mean_ns)
    );
    println!(
        "  class-deduped predicts : {} per tune_p  ({predicts_class} predicts)",
        human(class.mean_ns)
    );
    println!(
        "  reference round        : {} (Rebuild + Cold + PerPoint)  → warm-round speedup {warm_round_speedup:.2}x",
        human(reference.mean_ns)
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // The predict being deduped is small next to the EM fits both
        // paths share, so the gate is parity-with-noise-margin (the
        // dedup's value grows with the validation split), not a speedup
        // claim.
        assert!(
            class.mean_ns <= per_point.mean_ns * 1.10,
            "regression: class-deduped tune_p ({}) slower than per-point scoring ({})",
            human(class.mean_ns),
            human(per_point.mean_ns)
        );
        assert!(
            warm_round_speedup >= 2.0,
            "regression: warm tuning round ({}) not ≥2x faster than the reference round ({})",
            human(class.mean_ns),
            human(reference.mean_ns)
        );
    }
    let json = format!(
        concat!(
            "{{\"lfs\": {}, \"grid_points\": {}, \"predicts_per_point\": {}, ",
            "\"predicts_class\": {}, \"per_point_ns\": {:.0}, \"class_ns\": {:.0}, ",
            "\"dedup_speedup\": {:.4}, \"reference_round_ns\": {:.0}, ",
            "\"production_round_ns\": {:.0}, \"warm_round_speedup\": {:.4}}}"
        ),
        n_lfs,
        grid,
        grid,
        predicts_class,
        per_point.mean_ns,
        class.mean_ns,
        dedup_speedup,
        reference.mean_ns,
        class.mean_ns,
        warm_round_speedup,
    );
    results.push(class);
    results.push(per_point);
    results.push(reference);
    json
}

/// Run `f` with `NEMO_THREADS` pinned to `t`, restoring the prior setting
/// afterwards. The bench driver is single-threaded at every call site, so
/// the mutation is race-free; the sharded kernels are bit-identical under
/// any worker count (asserted below), so the setting only moves timings.
fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("NEMO_THREADS").ok();
    std::env::set_var("NEMO_THREADS", t.to_string());
    let r = f();
    match saved {
        Some(v) => std::env::set_var("NEMO_THREADS", v),
        None => std::env::remove_var("NEMO_THREADS"),
    }
    r
}

/// Worker threads the host can actually run concurrently. The sharded
/// speedup gates only apply when this is ≥ 2 (CI runners); on a single
/// hardware thread the same legs are measured and gated at parity with a
/// spawn-overhead margin instead.
fn effective_cores() -> usize {
    std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1)
}

/// Deterministic synthetic dense pool: `rows × dims`, values in ±4.
fn synthetic_dense(rows: usize, dims: usize, seed: u64) -> DenseMatrix {
    let mut rng = DetRng::new(seed);
    let mut m = DenseMatrix::zeros(rows, dims);
    for r in 0..rows {
        for v in m.row_mut(r) {
            *v = (rng.uniform() * 8.0 - 4.0) as f32;
        }
    }
    m
}

/// Deterministic synthetic sparse pool: `rows` rows over `dims` columns,
/// ~`nnz` nonzeros each — the TF-IDF-like regime of the indexed kernel.
fn synthetic_sparse(rows: usize, dims: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = DetRng::new(seed);
    let svs: Vec<SparseVec> = (0..rows)
        .map(|_| {
            let pairs: Vec<(u32, f32)> = (0..nnz)
                .map(|_| (rng.index(dims) as u32, (rng.uniform() * 2.0 + 0.1) as f32))
                .collect();
            SparseVec::from_pairs(pairs, dims)
        })
        .collect();
    CsrMatrix::from_rows(&svs, dims)
}

/// Blocked vs scalar dense point-to-all on a pool wide enough for the
/// lane kernels to matter. The two backends agree within 1e-9 (checked
/// before timing); with `NEMO_BENCH_ENFORCE` set, blocked must be ≥2×
/// the scalar reduction.
fn dense_blocked_bench(results: &mut Vec<BenchResult>) -> String {
    // Cache-resident pool (~0.8 MB): the blocked kernel's lane-level
    // parallelism is the bottleneck being measured, not DRAM bandwidth
    // (the sharded section below covers the streaming regime).
    let (rows, dims) = (2_048usize, 96usize);
    let m = synthetic_dense(rows, dims, 41);
    let norms = m.row_sq_norms();
    let mut out = Vec::new();

    // Agreement check across every pivot used by the timing loops.
    let mut check = Vec::new();
    for p in [0usize, rows / 2, rows - 1] {
        Distance::Cosine.dense_row_to_all_cached_into_with(
            DenseBackend::Scalar,
            m.row(p),
            norms[p],
            &m,
            &norms,
            &mut out,
        );
        Distance::Cosine.dense_row_to_all_cached_into_with(
            DenseBackend::Blocked,
            m.row(p),
            norms[p],
            &m,
            &norms,
            &mut check,
        );
        for (r, (&a, &b)) in out.iter().zip(&check).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "dense backends diverged at pivot {p} row {r}: scalar {a} blocked {b}"
            );
        }
    }

    let mut pivot = 0usize;
    let scalar = bench("dense_point_to_all_scalar", || {
        pivot = (pivot + 1) % rows;
        Distance::Cosine.dense_row_to_all_cached_into_with(
            DenseBackend::Scalar,
            m.row(pivot),
            norms[pivot],
            &m,
            &norms,
            &mut out,
        );
        out[pivot]
    });
    let blocked = bench("dense_point_to_all_blocked", || {
        pivot = (pivot + 1) % rows;
        Distance::Cosine.dense_row_to_all_cached_into_with(
            DenseBackend::Blocked,
            m.row(pivot),
            norms[pivot],
            &m,
            &norms,
            &mut out,
        );
        out[pivot]
    });

    let speedup = scalar.mean_ns / blocked.mean_ns;
    println!("\nBlocked dense distance kernel ({rows}×{dims} pool, cosine point-to-all):");
    println!("  scalar reduction       : {} per query", human(scalar.mean_ns));
    println!(
        "  blocked ({} lanes)      : {} per query",
        nemo_sparse::dense::DOT_LANES,
        human(blocked.mean_ns)
    );
    println!("  speedup                : {speedup:.2}x");
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Gate on min (steady-state) times: single-core runners schedule
        // noisily and the means wander; the mins are stable.
        assert!(
            blocked.min_ns * 2.0 <= scalar.min_ns,
            "regression: blocked dense kernel ({}) not ≥2x faster than scalar ({})",
            human(blocked.min_ns),
            human(scalar.min_ns)
        );
    }
    let json = format!(
        concat!(
            "{{\"rows\": {}, \"dims\": {}, \"scalar_ns\": {:.0}, \"blocked_ns\": {:.0}, ",
            "\"speedup\": {:.4}}}"
        ),
        rows, dims, scalar.mean_ns, blocked.mean_ns, speedup,
    );
    results.push(scalar);
    results.push(blocked);
    json
}

/// Row-block sharded dense point-to-all: the unsharded blocked kernel vs
/// the sharded kernel under `NEMO_THREADS` 1 and 4. All legs are asserted
/// bitwise-identical (the fixed shard grid never depends on the worker
/// count); with `NEMO_BENCH_ENFORCE` set, the 4-worker leg must be ≥1.5×
/// the unsharded kernel when ≥2 cores exist, else at parity with a
/// spawn-overhead margin.
fn dense_sharded_bench(results: &mut Vec<BenchResult>) -> String {
    let (rows, dims) = (20_000usize, 96usize);
    assert!(rows >= MIN_SHARDED_ROWS, "pool must engage the shard grid");
    let m = synthetic_dense(rows, dims, 43);
    let norms = m.row_sq_norms();
    let be = DenseBackend::Blocked;

    // Bitwise identity: serial vs sharded under 1 and 4 workers.
    let mut serial = Vec::new();
    let mut sharded = Vec::new();
    for p in [0usize, rows / 2, rows - 1] {
        Distance::Cosine.dense_row_to_all_cached_into_with(
            be,
            m.row(p),
            norms[p],
            &m,
            &norms,
            &mut serial,
        );
        for t in [1usize, 4] {
            with_threads(t, || {
                Distance::Cosine.dense_row_to_all_sharded_into(
                    be,
                    m.row(p),
                    norms[p],
                    &m,
                    &norms,
                    &mut sharded,
                )
            });
            for (r, (&a, &b)) in serial.iter().zip(&sharded).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "dense sharded kernel diverged at NEMO_THREADS={t} pivot {p} row {r}"
                );
            }
        }
    }

    let mut out = Vec::new();
    let mut pivot = 0usize;
    let unsharded = bench("dense_point_to_all_unsharded", || {
        pivot = (pivot + 1) % rows;
        Distance::Cosine.dense_row_to_all_cached_into_with(
            be,
            m.row(pivot),
            norms[pivot],
            &m,
            &norms,
            &mut out,
        );
        out[pivot]
    });
    let sharded_t1 = with_threads(1, || {
        bench("dense_point_to_all_sharded_t1", || {
            pivot = (pivot + 1) % rows;
            Distance::Cosine.dense_row_to_all_sharded_into(
                be,
                m.row(pivot),
                norms[pivot],
                &m,
                &norms,
                &mut out,
            );
            out[pivot]
        })
    });
    let sharded_t4 = with_threads(4, || {
        bench("dense_point_to_all_sharded_t4", || {
            pivot = (pivot + 1) % rows;
            Distance::Cosine.dense_row_to_all_sharded_into(
                be,
                m.row(pivot),
                norms[pivot],
                &m,
                &norms,
                &mut out,
            );
            out[pivot]
        })
    });

    let cores = effective_cores();
    let speedup = unsharded.mean_ns / sharded_t4.mean_ns;
    println!("\nSharded dense point-to-all ({rows}×{dims} pool, {cores} effective cores):");
    println!("  unsharded blocked      : {} per query", human(unsharded.mean_ns));
    println!("  sharded NEMO_THREADS=1 : {} per query", human(sharded_t1.mean_ns));
    println!("  sharded NEMO_THREADS=4 : {} per query  ({speedup:.2}x)", human(sharded_t4.mean_ns));
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Gates use min (steady-state) times — single-core runners
        // schedule multi-worker legs noisily and the means wander.
        if cores >= 2 {
            assert!(
                sharded_t4.min_ns * 1.5 <= unsharded.min_ns,
                "regression: sharded dense kernel ({}) not ≥1.5x unsharded ({}) on {cores} cores",
                human(sharded_t4.min_ns),
                human(unsharded.min_ns)
            );
        } else {
            // One hardware thread: extra workers can only add spawn
            // overhead, so the t4 leg is recorded but not gated; the
            // single-worker leg must stay at parity with the serial
            // kernel (it is the same code path).
            assert!(
                sharded_t1.min_ns <= unsharded.min_ns * 1.15,
                "regression: single-worker sharded dense kernel ({}) not at parity with \
                 unsharded ({})",
                human(sharded_t1.min_ns),
                human(unsharded.min_ns)
            );
        }
    }
    let json = format!(
        concat!(
            "{{\"rows\": {}, \"dims\": {}, \"effective_cores\": {}, \"unsharded_ns\": {:.0}, ",
            "\"sharded_t1_ns\": {:.0}, \"sharded_t4_ns\": {:.0}, \"speedup_t4\": {:.4}, ",
            "\"bitwise_identical\": true}}"
        ),
        rows, dims, cores, unsharded.mean_ns, sharded_t1.mean_ns, sharded_t4.mean_ns, speedup,
    );
    results.push(unsharded);
    results.push(sharded_t1);
    results.push(sharded_t4);
    json
}

/// Posting-range sharded single-pivot indexed queries on a pool far past
/// `MIN_SHARDED_ROWS`. Same gate structure as the dense sharded section:
/// bitwise identity across `NEMO_THREADS ∈ {1, 4}` always; ≥1.5× over the
/// unsharded indexed kernel when ≥2 cores exist, parity-with-margin on a
/// single core.
fn indexed_sharded_bench(results: &mut Vec<BenchResult>) -> String {
    let (rows, dims, nnz) = (120_000usize, 800usize, 10usize);
    let m = synthetic_sparse(rows, dims, nnz, 47);
    let norms = m.row_sq_norms();
    let index = CscIndex::from_csr(&m);
    let mut scratch = DistanceScratch::new();

    // Bitwise identity: serial vs sharded under 1 and 4 workers.
    let mut serial = Vec::new();
    let mut sharded = Vec::new();
    for p in [0usize, rows / 2, rows - 1] {
        Distance::Cosine.sparse_point_to_all_indexed_into(
            &m,
            &index,
            p,
            &norms,
            &mut scratch,
            &mut serial,
        );
        for t in [1usize, 4] {
            with_threads(t, || {
                Distance::Cosine.sparse_point_to_all_indexed_sharded_into(
                    &m,
                    &index,
                    p,
                    &norms,
                    &mut scratch,
                    &mut sharded,
                )
            });
            for (r, (&a, &b)) in serial.iter().zip(&sharded).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sharded indexed kernel diverged at NEMO_THREADS={t} pivot {p} row {r}"
                );
            }
        }
    }

    let mut out = Vec::new();
    let mut pivot = 0usize;
    let unsharded = bench("indexed_point_to_all_unsharded", || {
        pivot = (pivot + 1) % rows;
        Distance::Cosine.sparse_point_to_all_indexed_into(
            &m,
            &index,
            pivot,
            &norms,
            &mut scratch,
            &mut out,
        );
        out[pivot]
    });
    let sharded_t1 = with_threads(1, || {
        bench("indexed_point_to_all_sharded_t1", || {
            pivot = (pivot + 1) % rows;
            Distance::Cosine.sparse_point_to_all_indexed_sharded_into(
                &m,
                &index,
                pivot,
                &norms,
                &mut scratch,
                &mut out,
            );
            out[pivot]
        })
    });
    let sharded_t4 = with_threads(4, || {
        bench("indexed_point_to_all_sharded_t4", || {
            pivot = (pivot + 1) % rows;
            Distance::Cosine.sparse_point_to_all_indexed_sharded_into(
                &m,
                &index,
                pivot,
                &norms,
                &mut scratch,
                &mut out,
            );
            out[pivot]
        })
    });

    let cores = effective_cores();
    let speedup = unsharded.mean_ns / sharded_t4.mean_ns;
    println!(
        "\nSharded single-pivot indexed queries ({rows} rows, ~{nnz} nnz/row, {cores} effective cores):"
    );
    println!("  unsharded indexed      : {} per query", human(unsharded.mean_ns));
    println!("  sharded NEMO_THREADS=1 : {} per query", human(sharded_t1.mean_ns));
    println!("  sharded NEMO_THREADS=4 : {} per query  ({speedup:.2}x)", human(sharded_t4.mean_ns));
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Same gate structure (and min-time rationale) as the dense
        // sharded section above.
        if cores >= 2 {
            assert!(
                sharded_t4.min_ns * 1.5 <= unsharded.min_ns,
                "regression: sharded indexed kernel ({}) not ≥1.5x unsharded ({}) on {cores} cores",
                human(sharded_t4.min_ns),
                human(unsharded.min_ns)
            );
        } else {
            assert!(
                sharded_t1.min_ns <= unsharded.min_ns * 1.15,
                "regression: single-worker sharded indexed kernel ({}) not at parity with \
                 unsharded ({})",
                human(sharded_t1.min_ns),
                human(unsharded.min_ns)
            );
        }
    }
    let json = format!(
        concat!(
            "{{\"rows\": {}, \"dims\": {}, \"nnz_per_row\": {}, \"effective_cores\": {}, ",
            "\"unsharded_ns\": {:.0}, \"sharded_t1_ns\": {:.0}, \"sharded_t4_ns\": {:.0}, ",
            "\"speedup_t4\": {:.4}, \"bitwise_identical\": true}}"
        ),
        rows, dims, nnz, cores, unsharded.mean_ns, sharded_t1.mean_ns, sharded_t4.mean_ns, speedup,
    );
    results.push(unsharded);
    results.push(sharded_t1);
    results.push(sharded_t4);
    json
}

/// Dataset artifact store: cold catalog rebuild (tokenize, featurize,
/// index, norm — everything `catalog::build` does) vs reloading the same
/// immutable artifact set from a checkpoint file written once by
/// `nemo-persist`. The loaded bundle is asserted byte-identical to the
/// saved one before timing; with `NEMO_BENCH_ENFORCE` set, the checkpoint
/// load must be ≥5× faster than the cold build — the number that makes
/// disconnect/resume sessions feel instant.
fn artifact_load_bench(profile: Profile, results: &mut Vec<BenchResult>) -> String {
    let cold = bench("artifact_cold_build", || build(DatasetName::Amazon, profile, 3).train.n());

    let bundle = ArtifactBundle {
        dataset: build(DatasetName::Amazon, profile, 3),
        vocab: None,
        tfidf: None,
    };
    let dir = std::env::temp_dir().join(format!("nemo-bench-artifact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact scratch dir");
    let path = dir.join("amazon.nemo");
    save_artifact(&path, &bundle).expect("save dataset artifact");
    let file_bytes = std::fs::metadata(&path).expect("stat artifact file").len();

    // The reloaded bundle must be bit-identical to what was saved (the
    // canonical-form fixed point `persist_roundtrip.rs` proves in general).
    let reloaded = load_artifact(&path).expect("load dataset artifact");
    assert_eq!(
        artifact_to_bytes(&reloaded),
        artifact_to_bytes(&bundle),
        "artifact load not bit-identical to the saved bundle"
    );

    let load = bench("artifact_checkpoint_load", || {
        load_artifact(&path).expect("load artifact").dataset.train.n()
    });
    std::fs::remove_dir_all(&dir).ok();

    let speedup = cold.mean_ns / load.mean_ns;
    println!(
        "\nDataset artifact store ({} {}, {:.1} KiB on disk):",
        bundle.dataset.name,
        profile.name(),
        file_bytes as f64 / 1024.0
    );
    println!("  cold catalog build     : {} per build", human(cold.mean_ns));
    println!("  checkpoint load        : {} per load", human(load.mean_ns));
    println!("  speedup                : {speedup:.2}x");
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Gate on min (steady-state) times like the other sections.
        assert!(
            load.min_ns * 5.0 <= cold.min_ns,
            "regression: artifact checkpoint load ({}) not ≥5x faster than cold build ({})",
            human(load.min_ns),
            human(cold.min_ns)
        );
    }
    let json = format!(
        concat!(
            "{{\"dataset\": \"{}\", \"file_bytes\": {}, \"cold_build_ns\": {:.0}, ",
            "\"checkpoint_load_ns\": {:.0}, \"speedup\": {:.4}, \"bit_identical\": true}}"
        ),
        bundle.dataset.name, file_bytes, cold.mean_ns, load.mean_ns, speedup,
    );
    results.push(cold);
    results.push(load);
    json
}

/// Per-level measurements of the session-pool throughput sweep.
struct PoolLevel {
    sessions: usize,
    reps: usize,
    latencies: Vec<u64>,
    total_secs: f64,
    evictions: u64,
    restores: u64,
}

/// Value at quantile `q` of an ascending-sorted sample (nearest rank).
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Multi-tenant `SessionPool` throughput: K concurrent sessions over one
/// shared `SharedArtifacts` set, three interleaved batched rounds each, at
/// K ∈ {1, 8, 64, 256}. The pool caps residency at 64 sessions over an
/// in-memory *encoded* checkpoint store, so the 256-session level pays the
/// real persist-container serialization cost on every eviction/restore
/// cycle. Sessions/sec and p50/p99 round latencies are recorded per level.
///
/// Correctness is asserted unconditionally: the first eight sessions of
/// every level (including the eviction-churned 256-session level) must
/// retrace a standalone `NemoSystem` run bit-for-bit — same selections,
/// same posterior bits. With `NEMO_BENCH_ENFORCE`, pool scheduling
/// overhead for a single session must stay within 1.5x of driving a bare
/// `NemoSystem` directly (min-over-min, like the other gates).
fn session_pool_bench(ds: &Dataset, results: &mut Vec<BenchResult>) -> String {
    const ROUNDS: usize = 3;
    const MAX_RESIDENT: usize = 64;
    let seed_of = |rep: usize, j: usize| 40_000 + (rep * 1_000 + j) as u64;
    let session_cfg = |seed: u64| IdpConfig {
        n_iterations: ROUNDS,
        eval_every: ROUNDS,
        seed,
        ..IdpConfig::default()
    };
    let arts = SharedArtifacts::new(ds.clone());

    // Direct baseline: the same rounds driven on bare `NemoSystem`s.
    let mut direct_lat: Vec<u64> = Vec::new();
    for rep in 0..8 {
        let mut nemo = NemoSystem::new(arts.dataset(), session_cfg(seed_of(rep, 0)));
        let mut user = SimulatedUser::default();
        for _ in 0..ROUNDS {
            let t = Instant::now();
            nemo.step_with_user(&mut user).expect("direct round");
            direct_lat.push(t.elapsed().as_nanos() as u64);
        }
    }

    let mut levels: Vec<PoolLevel> = Vec::new();
    for &(k, reps) in &[(1usize, 8usize), (8, 3), (64, 1), (256, 1)] {
        let mut lv = PoolLevel {
            sessions: k,
            reps,
            latencies: Vec::new(),
            total_secs: 0.0,
            evictions: 0,
            restores: 0,
        };
        for rep in 0..reps {
            let config = PoolConfig { max_resident: MAX_RESIDENT, ..PoolConfig::default() };
            let mut pool =
                SessionPool::with_store(&arts, config, Box::new(EncodedCheckpointStore::new()));
            let ids: Vec<_> = (0..k)
                .map(|j| pool.admit(session_cfg(seed_of(rep, j))).expect("admit session"))
                .collect();
            let mut users: Vec<SimulatedUser> = (0..k).map(|_| SimulatedUser::default()).collect();
            let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); k];
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                let mut jobs: Vec<RoundJob<'_>> =
                    ids.iter().zip(users.iter_mut()).map(|(&id, u)| RoundJob::new(id, u)).collect();
                let outcomes = pool.run_rounds(&mut jobs).expect("pooled rounds");
                for (j, o) in outcomes.iter().enumerate() {
                    selections[j].push(o.record.selected);
                    lv.latencies.push(o.round_ns);
                }
            }
            lv.total_secs += t0.elapsed().as_secs_f64();
            lv.evictions += pool.stats().evictions;
            lv.restores += pool.stats().restores;

            if rep == 0 {
                for (j, &id) in ids.iter().enumerate().take(8) {
                    let mut nemo = NemoSystem::new(arts.dataset(), session_cfg(seed_of(rep, j)));
                    let mut user = SimulatedUser::default();
                    let solo: Vec<Option<usize>> = (0..ROUNDS)
                        .map(|_| nemo.step_with_user(&mut user).expect("solo round").selected)
                        .collect();
                    assert_eq!(
                        selections[j], solo,
                        "pooled session {id} diverged from standalone (selections, k={k})"
                    );
                    let pooled_bits = pool
                        .with_session(id, |n| {
                            n.outputs()
                                .train_posterior
                                .p_pos_slice()
                                .iter()
                                .map(|p| p.to_bits())
                                .collect::<Vec<u64>>()
                        })
                        .expect("inspect pooled session");
                    let solo_bits: Vec<u64> = nemo
                        .outputs()
                        .train_posterior
                        .p_pos_slice()
                        .iter()
                        .map(|p| p.to_bits())
                        .collect();
                    assert_eq!(
                        pooled_bits, solo_bits,
                        "pooled session {id} diverged from standalone (posterior bits, k={k})"
                    );
                }
            }
        }
        lv.latencies.sort_unstable();
        levels.push(lv);
    }

    let direct_mean = direct_lat.iter().sum::<u64>() as f64 / direct_lat.len() as f64;
    let direct_min = *direct_lat.iter().min().expect("direct samples") as f64;
    let pool1_mean =
        levels[0].latencies.iter().sum::<u64>() as f64 / levels[0].latencies.len() as f64;
    let pool1_min = levels[0].latencies[0] as f64;
    let overhead = pool1_min / direct_min;
    let workers = nemo_sparse::parallel::num_threads();
    println!(
        "\nSession pool ({} train={}, {ROUNDS} rounds/session, max_resident {MAX_RESIDENT}, \
         {workers} worker(s)):",
        ds.name,
        ds.train.n()
    );
    for lv in &levels {
        println!(
            "  {:>4} sessions x{}: {:>8.1} sessions/s  {:>8.1} rounds/s  p50 {:>10}  p99 {:>10}  \
             evict {:>4}  restore {:>4}",
            lv.sessions,
            lv.reps,
            (lv.sessions * lv.reps) as f64 / lv.total_secs,
            lv.latencies.len() as f64 / lv.total_secs,
            human(percentile_ns(&lv.latencies, 0.50) as f64),
            human(percentile_ns(&lv.latencies, 0.99) as f64),
            lv.evictions,
            lv.restores,
        );
    }
    println!(
        "  single-session pool overhead: {overhead:.2}x vs bare NemoSystem ({} vs {})",
        human(pool1_min),
        human(direct_min)
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        assert!(
            pool1_min <= direct_min * 1.5,
            "regression: pooled single-session round ({}) exceeds 1.5x a bare NemoSystem \
             round ({})",
            human(pool1_min),
            human(direct_min)
        );
    }

    let mut levels_json = String::from("[");
    for (i, lv) in levels.iter().enumerate() {
        levels_json.push_str(&format!(
            concat!(
                "{}{{\"sessions\": {}, \"reps\": {}, \"sessions_per_sec\": {:.2}, ",
                "\"rounds_per_sec\": {:.2}, \"p50_round_ns\": {}, \"p99_round_ns\": {}, ",
                "\"evictions\": {}, \"restores\": {}}}"
            ),
            if i == 0 { "" } else { ", " },
            lv.sessions,
            lv.reps,
            (lv.sessions * lv.reps) as f64 / lv.total_secs,
            lv.latencies.len() as f64 / lv.total_secs,
            percentile_ns(&lv.latencies, 0.50),
            percentile_ns(&lv.latencies, 0.99),
            lv.evictions,
            lv.restores,
        ));
    }
    levels_json.push(']');
    let json = format!(
        concat!(
            "{{\"rounds_per_session\": {}, \"max_resident\": {}, \"workers\": {}, ",
            "\"effective_cores\": {}, \"direct_round_ns\": {:.0}, \"pool_round_ns\": {:.0}, ",
            "\"pool_overhead\": {:.4}, \"bit_identical\": true, \"levels\": {}}}"
        ),
        ROUNDS,
        MAX_RESIDENT,
        workers,
        effective_cores(),
        direct_mean,
        pool1_mean,
        overhead,
        levels_json,
    );
    results.push(BenchResult {
        name: "session_round_direct",
        iters: direct_lat.len() as u32,
        mean_ns: direct_mean,
        min_ns: direct_min,
    });
    results.push(BenchResult {
        name: "session_round_pooled_k1",
        iters: levels[0].latencies.len() as u32,
        mean_ns: pool1_mean,
        min_ns: pool1_min,
    });
    json
}

/// IWS candidate-ranking engine vs the reference SEU engine: end-model
/// test accuracy per oracle query, same dataset, same seed, same
/// simulated user, one query per round. Both engines run through the
/// unified `SelectionEngine` API on bare `NemoSystem`s; the IWS run is
/// additionally checkpointed mid-stream and resumed, and the resumed
/// final score is asserted bit-identical (the determinism the engine
/// state section exists for).
///
/// At this query budget the paper's ordering holds: IWS's learned
/// candidate ranker sits near the IWS-LSE baseline (~0.47–0.55 on the
/// quick profile — it needs hundreds of answers before its usefulness
/// model ranks well), while SEU's user-model-guided development reaches
/// ~0.63 (Table 2's gap). With `NEMO_BENCH_ENFORCE` set, the gate pins
/// exactly that: SEU clears an absolute floor, SEU's score-per-query
/// stays ahead of IWS's, and the IWS loop is non-degenerate (both accept
/// and reject feedback occurred) — every quantity here is deterministic,
/// so the gate cannot flake on timing noise.
fn iws_rank_bench(ds: &Dataset, results: &mut Vec<BenchResult>) -> String {
    const ROUNDS: usize = 25;
    const SEED: u64 = 17;
    let cfg = |selection| IdpConfig {
        selection,
        n_iterations: ROUNDS,
        eval_every: 5,
        seed: SEED,
        ..IdpConfig::default()
    };

    let run = |selection| {
        let mut nemo = NemoSystem::new(ds, cfg(selection));
        let mut user = SimulatedUser::default();
        let mut round_ns: Vec<u64> = Vec::new();
        let mut curve = nemo_core::idp::LearningCurve::default();
        let mut accepts = 0usize;
        for t in 0..ROUNDS {
            let before = nemo.lineage().len();
            let clock = Instant::now();
            nemo.step_with_user(&mut user).expect("bench round");
            round_ns.push(clock.elapsed().as_nanos() as u64);
            accepts += usize::from(nemo.lineage().len() > before);
            if (t + 1) % 5 == 0 {
                curve.push(t + 1, nemo.test_score());
            }
        }
        (nemo.test_score(), curve, round_ns, accepts)
    };
    use nemo_core::config::SelectionStrategy;
    let (seu_final, seu_curve, seu_ns, _) = run(SelectionStrategy::Seu);
    let (iws_final, iws_curve, iws_ns, iws_accepts) = run(SelectionStrategy::Iws);

    // Mid-stream checkpoint/restore of the IWS run must land on the same
    // bits as the uninterrupted run — asserted unconditionally, like the
    // other sections' correctness checks.
    let resumed_final = {
        let mut nemo = NemoSystem::new(ds, cfg(SelectionStrategy::Iws));
        let mut user = SimulatedUser::default();
        for _ in 0..ROUNDS / 2 {
            nemo.step_with_user(&mut user).expect("pre-checkpoint round");
        }
        let ckpt = nemo.checkpoint();
        let mut resumed = NemoSystem::restore(ds, &ckpt).expect("restore IWS engine");
        let mut fresh = SimulatedUser::default();
        for _ in ROUNDS / 2..ROUNDS {
            resumed.step_with_user(&mut fresh).expect("post-restore round");
        }
        resumed.test_score()
    };
    assert_eq!(
        iws_final.to_bits(),
        resumed_final.to_bits(),
        "restored IWS run diverged from the uninterrupted run"
    );

    let mean_ns = |ns: &[u64]| ns.iter().sum::<u64>() as f64 / ns.len() as f64;
    let min_ns = |ns: &[u64]| ns.iter().copied().min().expect("rounds ran") as f64;
    let (seu_mean, iws_mean) = (mean_ns(&seu_ns), mean_ns(&iws_ns));
    // Each round costs exactly one oracle query in both engines, so
    // score-per-query is the final score over the query budget.
    let seu_per_query = seu_final / ROUNDS as f64;
    let iws_per_query = iws_final / ROUNDS as f64;

    println!(
        "\nIWS candidate ranking vs SEU ({} {}, {ROUNDS} oracle queries):",
        ds.name,
        ds.train.n()
    );
    println!(
        "  SEU final test score   : {seu_final:.4}  ({seu_per_query:.5}/query, {} per round)",
        human(seu_mean)
    );
    println!(
        "  IWS final test score   : {iws_final:.4}  ({iws_per_query:.5}/query, {} per round, \
         {iws_accepts}/{ROUNDS} accepts)",
        human(iws_mean)
    );
    println!("  mid-stream restore     : bit-identical final score");
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Deterministic gates (see the fn docs): the committed
        // quick-profile numbers are SEU 0.6278 vs IWS ~0.47 at this
        // budget — the paper's ordering.
        assert!(
            seu_final >= 0.55,
            "regression: SEU reference run scored {seu_final:.4} (< 0.55 floor)"
        );
        assert!(
            seu_per_query >= iws_per_query,
            "regression: IWS score-per-query ({iws_per_query:.5}) overtook SEU \
             ({seu_per_query:.5}) — the Table 2 ordering inverted; recheck both engines"
        );
        assert!(
            iws_accepts > 0 && iws_accepts < ROUNDS,
            "regression: degenerate IWS loop ({iws_accepts}/{ROUNDS} accepts) — the user \
             model never saw both feedback kinds"
        );
    }

    let curve_json = |curve: &nemo_core::idp::LearningCurve| {
        let pts: Vec<String> =
            curve.points().iter().map(|&(i, s)| format!("[{i}, {s:.6}]")).collect();
        format!("[{}]", pts.join(", "))
    };
    let json = format!(
        concat!(
            "{{\"rounds\": {}, \"seu_final\": {:.6}, \"iws_final\": {:.6}, ",
            "\"seu_per_query\": {:.6}, \"iws_per_query\": {:.6}, ",
            "\"iws_accepts\": {}, \"seu_round_ns\": {:.0}, \"iws_round_ns\": {:.0}, ",
            "\"restore_bit_identical\": true, ",
            "\"seu_curve\": {}, \"iws_curve\": {}}}"
        ),
        ROUNDS,
        seu_final,
        iws_final,
        seu_per_query,
        iws_per_query,
        iws_accepts,
        seu_mean,
        iws_mean,
        curve_json(&seu_curve),
        curve_json(&iws_curve),
    );
    results.push(BenchResult {
        name: "seu_engine_round",
        iters: seu_ns.len() as u32,
        mean_ns: seu_mean,
        min_ns: min_ns(&seu_ns),
    });
    results.push(BenchResult {
        name: "iws_engine_round",
        iters: iws_ns.len() as u32,
        mean_ns: iws_mean,
        min_ns: min_ns(&iws_ns),
    });
    json
}

/// Mean time of a named kernel result (panics if the kernel wasn't run).
fn mean_of(results: &[BenchResult], name: &str) -> f64 {
    results.iter().find(|r| r.name == name).map(|r| r.mean_ns).expect("kernel benched")
}

/// Summarize the sparse-distance engine: indexed vs naive point-to-all and
/// batched vs per-LF contextualizer registration. Returns the JSON
/// fragment; with `NEMO_BENCH_ENFORCE` set, a slower indexed/batched path
/// aborts the run (the CI regression guard).
fn distance_engine_summary(results: &[BenchResult]) -> String {
    let naive = mean_of(results, "distance_point_to_all_cosine");
    let indexed = mean_of(results, "distance_point_to_all_indexed");
    let per_lf = mean_of(results, "contextualizer_register_per_lf");
    let batch = mean_of(results, "contextualizer_register_batch");
    let kernel_speedup = naive / indexed;
    let register_speedup = per_lf / batch;
    println!("\nSparse distance engine (inverted-index kernel vs naive row-major scan):");
    println!(
        "  point-to-all  naive {} → indexed {}  ({kernel_speedup:.2}x)",
        human(naive),
        human(indexed)
    );
    println!(
        "  register 32 LFs  per-LF {} → batched {}  ({register_speedup:.2}x)",
        human(per_lf),
        human(batch)
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        assert!(
            indexed <= naive,
            "regression: indexed point-to-all ({}) slower than naive ({})",
            human(indexed),
            human(naive)
        );
        assert!(
            batch <= per_lf,
            "regression: batched registration ({}) slower than per-LF ({})",
            human(batch),
            human(per_lf)
        );
    }
    format!(
        concat!(
            "{{\"naive_point_to_all_ns\": {:.0}, \"indexed_point_to_all_ns\": {:.0}, ",
            "\"indexed_speedup\": {:.4}, \"register_per_lf_ns\": {:.0}, ",
            "\"register_batch_ns\": {:.0}, \"register_speedup\": {:.4}}}"
        ),
        naive, indexed, kernel_speedup, per_lf, batch, register_speedup,
    )
}

/// Combined contextualized-round headline: what one EM-tuned round cost
/// before the two incremental paths (stand-alone SEU kernel — the
/// `seu_fast_path_full_pool` baseline ROADMAP names — plus cold tune_p)
/// vs after (dirty-set scoring on incremental aggregates plus
/// warm-started tune_p). The conservative table-rescore SEU baseline is
/// recorded alongside. With `NEMO_BENCH_ENFORCE` set, a combined round
/// slower than the pre-optimization baseline aborts the run.
fn incremental_round_summary(
    results: &[BenchResult],
    seu_full_round_ns: f64,
    seu_dirty_round_ns: f64,
    tune_cold_ns: f64,
    tune_warm_ns: f64,
) -> String {
    let seu_standalone_ns = mean_of(results, "seu_fast_path_full_pool");
    let combined_cold = seu_standalone_ns + tune_cold_ns;
    let combined_warm = seu_dirty_round_ns + tune_warm_ns;
    let combined_speedup = combined_cold / combined_warm;
    let conservative_speedup =
        (seu_full_round_ns + tune_cold_ns) / (seu_dirty_round_ns + tune_warm_ns);
    println!("\nCombined contextualized round (SEU scoring + EM percentile tuning):");
    println!(
        "  before : {} (stand-alone SEU {} + cold tune_p {})",
        human(combined_cold),
        human(seu_standalone_ns),
        human(tune_cold_ns)
    );
    println!(
        "  after  : {} (dirty-set SEU {} + warm tune_p {})",
        human(combined_warm),
        human(seu_dirty_round_ns),
        human(tune_warm_ns)
    );
    println!(
        "  speedup: {combined_speedup:.2}x  ({conservative_speedup:.2}x vs the \
         incremental-aggregates + full-rescore baseline)"
    );
    if std::env::var("NEMO_BENCH_ENFORCE").is_ok() {
        // Committed numbers show ~3x; gate only the sign so single-core
        // CI noise cannot flake the build.
        assert!(
            combined_speedup >= 1.0,
            "regression: incremental contextualized round ({}) slower than the \
             cold-path baseline ({})",
            human(combined_warm),
            human(combined_cold)
        );
    }
    format!(
        concat!(
            "{{\"standalone_seu_ns\": {:.0}, \"table_rescore_seu_ns\": {:.0}, ",
            "\"dirty_seu_ns\": {:.0}, \"cold_tune_ns\": {:.0}, \"warm_tune_ns\": {:.0}, ",
            "\"combined_speedup\": {:.4}, \"conservative_speedup\": {:.4}}}"
        ),
        seu_standalone_ns,
        seu_full_round_ns,
        seu_dirty_round_ns,
        tune_cold_ns,
        tune_warm_ns,
        combined_speedup,
        conservative_speedup,
    )
}

fn main() {
    let profile = Profile::from_env();
    let ds = build(DatasetName::Amazon, profile, 3);
    println!(
        "Kernel microbenchmarks (profile: {}, dataset: {} train={} |Z|={})",
        profile.name(),
        ds.name,
        ds.train.n(),
        ds.n_primitives
    );

    let mut results = Vec::new();
    kernel_benches(&ds, &mut results);
    println!("\n{:<36} {:>8} {:>12} {:>12}", "kernel", "iters", "mean", "min");
    for r in &results {
        println!("{:<36} {:>8} {:>12} {:>12}", r.name, r.iters, human(r.mean_ns), human(r.min_ns));
    }

    let (trajectory, session_lineage) = record_trajectory(&ds);
    let engine_json = distance_engine_summary(&results);
    let dense_blocked_json = dense_blocked_bench(&mut results);
    let dense_sharded_json = dense_sharded_bench(&mut results);
    let indexed_sharded_json = indexed_sharded_bench(&mut results);
    let artifact_json = artifact_load_bench(profile, &mut results);
    let pool_json = session_pool_bench(&ds, &mut results);
    let iws_rank_json = iws_rank_bench(&ds, &mut results);
    let loop_json = seu_loop_bench(&ds, &trajectory);
    let (dirty_json, seu_full_round_ns, seu_dirty_round_ns) = seu_dirty_bench(&ds, &trajectory);
    let refine_json = refine_cache_bench(&ds, &session_lineage, &mut results);
    let cow_json = matrix_cow_bench(&ds, &session_lineage, &mut results);
    let dedup_json = tune_p_dedup_bench(&ds, &session_lineage, &mut results);
    let (warm_json, tune_cold_ns, tune_warm_ns) =
        tune_p_warm_bench(&ds, &session_lineage, &mut results);

    let round_json = incremental_round_summary(
        &results,
        seu_full_round_ns,
        seu_dirty_round_ns,
        tune_cold_ns,
        tune_warm_ns,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"profile\": \"{}\",\n", profile.name()));
    json.push_str(&format!("  \"dataset\": \"{}\",\n", ds.name));
    json.push_str(&format!("  \"train_n\": {},\n", ds.train.n()));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"mean_ns\": {:.0}, \"min_ns\": {:.0}}}{}\n",
            r.name,
            r.iters,
            r.mean_ns,
            r.min_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"distance_engine\": {engine_json},\n"));
    json.push_str(&format!("  \"dense_blocked\": {dense_blocked_json},\n"));
    json.push_str(&format!("  \"dense_sharded\": {dense_sharded_json},\n"));
    json.push_str(&format!("  \"indexed_sharded\": {indexed_sharded_json},\n"));
    json.push_str(&format!("  \"artifact_load\": {artifact_json},\n"));
    json.push_str(&format!("  \"session_pool\": {pool_json},\n"));
    json.push_str(&format!("  \"iws_rank\": {iws_rank_json},\n"));
    json.push_str(&format!("  \"seu_loop\": {loop_json},\n"));
    json.push_str(&format!("  \"seu_dirty\": {dirty_json},\n"));
    json.push_str(&format!("  \"refine_cache\": {refine_json},\n"));
    json.push_str(&format!("  \"matrix_cow\": {cow_json},\n"));
    json.push_str(&format!("  \"tune_p_dedup\": {dedup_json},\n"));
    json.push_str(&format!("  \"tune_p_warm\": {warm_json},\n"));
    json.push_str(&format!("  \"incremental_round\": {round_json}\n"));
    json.push_str("}\n");

    // Anchor to the workspace root (cargo bench sets CWD to the package).
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_kernel.json");
    std::fs::write(&out, &json).expect("write BENCH_kernel.json");
    println!("\nwrote {}", out.display());
}

//! Figure 2: LF coverage and accuracy by distance to development data.
//!
//! For 100 simulated-user LFs on Amazon, all training examples are split
//! into four subspaces by the quartile of their distance to the LF's
//! development data point; the LF's coverage and accuracy are computed in
//! each subspace and averaged over LFs — the locality premise the whole
//! paper builds on (higher coverage *and* higher accuracy near the
//! development data).

use nemo_bench::{write_csv, BenchProtocol, Table};
use nemo_core::oracle::SimulatedUser;
use nemo_data::DatasetName;
use nemo_sparse::{DetRng, Distance, DistanceScratch};

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Figure 2 — LF locality on Amazon (profile: {}; 100 simulated-user LFs)",
        protocol.profile.name()
    );
    let ds = protocol.dataset(DatasetName::Amazon);
    let user = SimulatedUser::default();
    let mut rng = DetRng::new(0xf162);
    let n = ds.train.n();

    let mut cov_q = [0.0f64; 4];
    let mut acc_q = [0.0f64; 4];
    let mut acc_n = [0usize; 4];
    let mut n_lfs = 0usize;
    let mut guard = 0usize;
    // One indexed-engine scratch + distance buffer reused across all LFs.
    let mut scratch = DistanceScratch::new();
    let mut dists = Vec::new();
    while n_lfs < 100 && guard < 2000 {
        guard += 1;
        let x = rng.index(n);
        let candidates = user.candidates(x, &ds);
        let passing: Vec<_> = candidates.iter().filter(|&&(_, a)| a >= 0.5).collect();
        if passing.is_empty() {
            continue;
        }
        let (lf, _) = *passing[rng.index(passing.len())];
        n_lfs += 1;

        ds.train.features.point_to_all_into(Distance::Cosine, x, &mut scratch, &mut dists);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dists[a].partial_cmp(&dists[b]).expect("finite distances"));
        for q in 0..4 {
            let seg = &order[q * n / 4..(q + 1) * n / 4];
            let covered: Vec<usize> =
                seg.iter().copied().filter(|&i| ds.train.corpus.contains(i, lf.z)).collect();
            cov_q[q] += covered.len() as f64 / seg.len() as f64;
            if !covered.is_empty() {
                let correct = covered.iter().filter(|&&i| ds.train.labels[i] == lf.y).count();
                acc_q[q] += correct as f64 / covered.len() as f64;
                acc_n[q] += 1;
            }
        }
    }

    let mut table = Table::new(&["Distance quartile", "Coverage", "Accuracy"]);
    let mut csv = Vec::new();
    for q in 0..4 {
        let cov = cov_q[q] / n_lfs as f64;
        let acc = if acc_n[q] > 0 { acc_q[q] / acc_n[q] as f64 } else { f64::NAN };
        table.row(vec![
            format!("Q{} ({}–{}%)", q + 1, q * 25, (q + 1) * 25),
            format!("{cov:.4}"),
            if acc.is_nan() { "n/a (no coverage)".into() } else { format!("{acc:.3}") },
        ]);
        csv.push(vec![(q + 1).to_string(), format!("{cov:.5}"), format!("{acc:.4}")]);
    }
    table.print(&format!(
        "Averaged over {n_lfs} LFs (paper Fig. 2: both series decay with distance):"
    ));
    write_csv("fig2_lf_locality", &["quartile", "coverage", "accuracy"], &csv);
}

//! The paper's running example (Example 1.1): sentiment classification on
//! product reviews from several categories, where keyword meaning shifts
//! across categories ("funny" is praise for a movie, suspicious for food).
//!
//! This example makes the two phenomena of Figure 2 concrete on generated
//! data — keyword LFs (a) cover mostly the category they were developed
//! in, and (b) lose accuracy away from it — then shows the contextualizer
//! exploiting exactly that structure.
//!
//! ```text
//! cargo run --release --example sentiment_products
//! ```

use nemo::core::contextualizer::Contextualizer;
use nemo::data::catalog;
use nemo::lf::{LabelMatrix, LfColumn, Lineage};
use nemo::prelude::*;

fn main() {
    let dataset = catalog::build(DatasetName::Amazon, Profile::Smoke, 11);
    let user = SimulatedUser::default();
    let n_clusters = 1 + *dataset.train.clusters.iter().max().unwrap() as usize;

    // Collect a handful of high-quality user LFs from distinct categories.
    let mut rng = nemo::sparse::DetRng::new(3);
    let mut lineage = Lineage::new();
    let mut matrix = LabelMatrix::new(dataset.train.n());
    let mut per_cluster = vec![0usize; n_clusters];
    let mut x = 0usize;
    while lineage.len() < 6 && x < dataset.train.n() {
        let cluster = dataset.train.clusters[x] as usize;
        if per_cluster[cluster] < 2 {
            if let Some(lf) = {
                let mut u = user.clone();
                nemo::core::oracle::User::provide_lf(&mut u, x, &dataset, &mut rng)
            } {
                let acc = lf
                    .accuracy_against(&dataset.train.corpus, &dataset.train.labels)
                    .unwrap_or(0.0);
                if acc >= 0.7 {
                    lineage.record(lf, x as u32, lineage.len() as u32);
                    matrix.push(LfColumn::from_lf(&lf, &dataset.train.corpus));
                    per_cluster[cluster] += 1;
                }
            }
        }
        x += 3;
    }

    // Phenomenon: per-category coverage and accuracy of each LF.
    println!("per-category behaviour of user keyword LFs (dev category marked *):\n");
    for (j, rec) in lineage.tracked().iter().enumerate() {
        let dev_cluster = dataset.train.clusters[rec.dev_example as usize];
        print!("  λ{}(\"{}\" → {}):", j, dataset.primitive_name(rec.lf.z), rec.lf.y);
        for k in 0..n_clusters as u32 {
            let members: Vec<usize> =
                (0..dataset.train.n()).filter(|&i| dataset.train.clusters[i] == k).collect();
            let covered: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| dataset.train.corpus.contains(i, rec.lf.z))
                .collect();
            let acc = if covered.is_empty() {
                f64::NAN
            } else {
                covered.iter().filter(|&&i| dataset.train.labels[i] == rec.lf.y).count() as f64
                    / covered.len() as f64
            };
            let marker = if k == dev_cluster { "*" } else { " " };
            if acc.is_nan() {
                print!("  cat{k}{marker}: —        ");
            } else {
                print!(
                    "  cat{k}{marker}: {:>4.0}%/{:>2.0}%",
                    100.0 * covered.len() as f64 / members.len() as f64,
                    100.0 * acc
                );
            }
        }
        println!();
    }
    println!("\n  (per category: coverage% / accuracy% — both are highest in the dev category)");

    // The contextualizer acting on this structure.
    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(&lineage, &dataset);
    let vote_acc = |m: &LabelMatrix| -> (usize, f64) {
        let (mut correct, mut total) = (0usize, 0usize);
        for col in m.columns() {
            for &(i, v) in col.entries() {
                total += 1;
                if Label::from_sign(v) == Some(dataset.train.labels[i as usize]) {
                    correct += 1;
                }
            }
        }
        (total, correct as f64 / total.max(1) as f64)
    };
    println!("\ncontextualizer refinement (radius = p-th percentile of distances to dev data):");
    for &p in &[25.0, 50.0, 100.0] {
        let refined = ctx.refined_train_matrix(&matrix, p);
        let (votes, acc) = vote_acc(&refined);
        println!("  p = {p:>3}: {votes:>5} votes at {:.1}% accuracy", 100.0 * acc);
    }
    println!(
        "\nshrinking the radius trades coverage for vote accuracy — Nemo tunes p on validation."
    );
}

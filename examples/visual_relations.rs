//! Visual relation classification (the paper's Visual Genome task):
//! "is the image's relationship *carrying* or *riding*?" with the image's
//! object annotations as LF primitives and dense embeddings as features.
//!
//! This exercises the configuration where the primitive domain (discrete
//! object tags) is *decoupled* from the feature space (dense embeddings):
//! the contextualizer measures distances in a space it did not derive the
//! primitives from.
//!
//! ```text
//! cargo run --release --example visual_relations
//! ```

use nemo::baselines::{run_method, Method, RunSpec};
use nemo::data::catalog;
use nemo::prelude::*;

fn main() {
    let dataset = catalog::build(DatasetName::Vg, Profile::Smoke, 31);
    println!(
        "dataset: {} — {} scenes, {}-dim embeddings, {} object tags",
        dataset.name,
        dataset.train.n(),
        dataset.train.features.dim(),
        dataset.n_primitives
    );

    // Peek at a scene the way the paper's UI would show it.
    let scene = 0usize;
    let objects: Vec<&str> = dataset
        .train
        .corpus
        .primitives_of(scene)
        .iter()
        .map(|&z| dataset.primitive_name(z))
        .collect();
    println!("\nscene #{scene}: objects {objects:?}");

    // Run Nemo with a simulated annotator who picks relation-indicative
    // objects ("horse" → riding; "backpack" → carrying).
    let config = IdpConfig { n_iterations: 30, eval_every: 5, seed: 3, ..Default::default() };
    let mut nemo = NemoSystem::new(&dataset, config.clone());
    let mut user = SimulatedUser::default();
    let curve = nemo.run_with_user(&mut user);
    println!(
        "\nNemo on VG: curve accuracy {:.3}, final {:.3}",
        curve.summary(),
        curve.final_score()
    );

    println!("\nobject LFs collected:");
    for rec in nemo.lineage().tracked().iter().take(6) {
        let relation = match rec.lf.y {
            nemo::lf::Label::Pos => "carrying",
            nemo::lf::Label::Neg => "riding",
        };
        println!("  scene contains \"{}\" → {relation}", dataset.primitive_name(rec.lf.z));
    }

    // Table 9's distance question matters most here: embeddings are not
    // L2-normalized TF-IDF, so cosine and euclidean genuinely differ.
    for method in [Method::ClOnly, Method::ClEuclidean, Method::Snorkel] {
        let spec = RunSpec { idp: config.clone(), ..Default::default() };
        let c = run_method(method, &dataset, &spec);
        println!("  {:<26} curve accuracy {:.3}", method.name(), c.summary());
    }
}

//! Spam filtering under heavy class imbalance (the paper's SMS task,
//! evaluated with F1): compare Nemo with the prevailing Snorkel workflow
//! and with classic uncertainty-sampling active learning, all under the
//! same 40-query budget.
//!
//! ```text
//! cargo run --release --example spam_filtering
//! ```

use nemo::baselines::{run_method, Method, RunSpec};
use nemo::data::catalog;
use nemo::prelude::*;
use nemo::sparse::stats::mean;

fn main() {
    let dataset = catalog::build(DatasetName::Sms, Profile::Smoke, 23);
    println!(
        "dataset: {} — {} messages, {:.1}% spam, metric = {}",
        dataset.name,
        dataset.train.n(),
        100.0 * dataset.train.pos_frac(),
        dataset.metric.name()
    );

    let methods = [Method::Nemo, Method::ClOnly, Method::Snorkel, Method::Us];
    println!("\n40 interactive iterations, 2 seeds, evaluation every 5 (test F1):\n");
    for method in methods {
        let mut summaries = Vec::new();
        let mut finals = Vec::new();
        for seed in 0..2u64 {
            let spec = RunSpec {
                idp: IdpConfig {
                    n_iterations: 40,
                    eval_every: 5,
                    seed: 100 + seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let curve = run_method(method, &dataset, &spec);
            summaries.push(curve.summary());
            finals.push(curve.final_score());
        }
        println!(
            "  {:<16} curve F1 {:.3}   final F1 {:.3}",
            method.name(),
            mean(&summaries),
            mean(&finals)
        );
    }
    println!(
        "\nUnder imbalance, one labeling function covers many messages per query, while\n\
         active learning buys exactly one label — and rarely a spam one. Contextualized\n\
         refinement additionally strips spam-keyword votes that over-generalize onto ham."
    );
}

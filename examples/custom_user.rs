//! Extending the system: a custom `User` implementation and the multi-LF
//! mode of the paper's Sec. 7.
//!
//! The `User` trait is the integration point for real frontends — here a
//! scripted "domain expert" who only ever writes LFs over a fixed
//! vocabulary of trusted keywords, demonstrated in both the atomic
//! (one LF per iteration) and the multi-LF IDP settings.
//!
//! ```text
//! cargo run --release --example custom_user
//! ```

use nemo::core::multi_lf::multi_lf_selector;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::IdpSession;
use nemo::data::catalog::toy_text;
use nemo::prelude::*;
use nemo::sparse::DetRng;

/// A scripted expert: writes an LF only when the shown example contains
/// one of their trusted keywords, with the keyword's fixed polarity.
struct KeywordExpert {
    trusted: Vec<(u32, nemo::lf::Label)>,
}

impl KeywordExpert {
    fn new(ds: &Dataset) -> Self {
        // Trust the five most frequent lexicon words, with the polarity
        // that maximizes training accuracy (an expert knows their domain).
        let mut lex: Vec<u32> = ds.lexicon.clone();
        lex.sort_by_key(|&z| std::cmp::Reverse(ds.train.corpus.index().df(z)));
        let trusted = lex
            .into_iter()
            .take(5)
            .map(|z| {
                let best = nemo::lf::Label::ALL
                    .into_iter()
                    .max_by(|&a, &b| {
                        let acc = |y| {
                            PrimitiveLf::new(z, y)
                                .accuracy_against(&ds.train.corpus, &ds.train.labels)
                                .unwrap_or(0.0)
                        };
                        acc(a).partial_cmp(&acc(b)).expect("finite accuracy")
                    })
                    .expect("two labels");
                (z, best)
            })
            .collect();
        Self { trusted }
    }
}

impl User for KeywordExpert {
    fn name(&self) -> &'static str {
        "keyword-expert"
    }

    fn provide_lf(&mut self, x: usize, ds: &Dataset, _rng: &mut DetRng) -> Option<PrimitiveLf> {
        self.trusted
            .iter()
            .find(|&&(z, _)| ds.train.corpus.contains(x, z))
            .map(|&(z, y)| PrimitiveLf::new(z, y))
    }
}

fn main() {
    let dataset = toy_text(5);

    // Atomic IDP with the custom user driving the full Nemo system.
    let config = IdpConfig { n_iterations: 12, eval_every: 4, seed: 1, ..Default::default() };
    let mut nemo = NemoSystem::new(&dataset, config.clone());
    let mut expert = KeywordExpert::new(&dataset);
    let curve = nemo.run_with_user(&mut expert);
    println!("scripted expert, atomic IDP:");
    for &(iter, score) in curve.points() {
        println!("  iteration {iter:>2} → test accuracy {score:.3}");
    }
    println!(
        "  {} LFs collected ({} iterations skipped: no trusted keyword in the shown example)",
        nemo.lineage().len(),
        nemo.iteration() - nemo.lineage().len()
    );

    // Multi-LF IDP (Sec. 7): up to 3 LFs per iteration with the Eq. 5–6
    // selector, driven through the generic session API.
    let multi_config = IdpConfig { lfs_per_iteration: 3, ..config };
    let mut session = IdpSession::new(
        &dataset,
        multi_config,
        Box::new(multi_lf_selector()),
        Box::new(nemo::core::oracle::SimulatedUser::default()),
        Box::new(ContextualizedPipeline::default()),
    );
    let multi_curve = session.run();
    println!(
        "\nmulti-LF IDP (simulated user, ≤3 LFs/iteration): {} LFs in {} iterations, curve score {:.3}",
        session.lineage().len(),
        session.iteration(),
        multi_curve.summary()
    );
}

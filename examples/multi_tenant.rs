//! Multi-tenant serving: many interactive sessions over one shared,
//! immutable artifact set.
//!
//! A `SessionPool` admits sessions against a single `SharedArtifacts`
//! (here wrapped in an `Arc`, as a server would hold it), caps how many
//! are resident at once, spills the least-recently-used ones through a
//! checkpoint store when the cap is hit, and batches rounds across
//! worker threads with work stealing. Evicted sessions restore
//! bit-identically, so tenants never observe the pool's residency
//! management.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use nemo::data::catalog;
use nemo::prelude::*;

fn main() {
    // 1. One immutable artifact set for every tenant. In production this
    //    comes off disk via `nemo::persist::load_shared_artifacts`; here
    //    we build it from the catalog and share it behind an Arc.
    let artifacts =
        Arc::new(SharedArtifacts::new(catalog::build(DatasetName::Amazon, Profile::Smoke, 42)));
    println!(
        "artifacts: {} — {} unlabeled examples, shared by every session\n",
        artifacts.name,
        artifacts.train.n()
    );

    // 2. A pool with a deliberately tiny residency cap, so eviction is
    //    visible: at most 4 of the 12 sessions are materialized at any
    //    moment; the rest live as checkpoints in the (default in-memory)
    //    store. `workers: None` follows NEMO_THREADS.
    let config = PoolConfig { max_resident: 4, ..PoolConfig::default() };
    let mut pool = SessionPool::new(&artifacts, config);

    // 3. Admit 12 tenants, each with its own config and seed.
    let rounds = 5;
    let ids: Vec<_> = (0..12)
        .map(|tenant| {
            let cfg = IdpConfig {
                n_iterations: rounds,
                eval_every: rounds,
                seed: 100 + tenant as u64,
                ..IdpConfig::default()
            };
            pool.admit(cfg).expect("admit tenant")
        })
        .collect();

    // 4. Serve interleaved rounds: every tenant advances one round per
    //    wave. `run_rounds` schedules each wave across the parallel
    //    workers with work stealing and transparently restores evicted
    //    members first.
    let mut users: Vec<SimulatedUser> = (0..ids.len()).map(|_| SimulatedUser::default()).collect();
    for round in 0..rounds {
        let mut jobs: Vec<RoundJob<'_>> =
            ids.iter().zip(users.iter_mut()).map(|(&id, user)| RoundJob::new(id, user)).collect();
        let outcomes = pool.run_rounds(&mut jobs).expect("batched round");
        let restored = outcomes.iter().filter(|o| o.restored).count();
        println!(
            "round {round}: served {} sessions ({restored} restored from checkpoint)",
            outcomes.len()
        );
    }

    // 5. Tenants are inspectable wherever they reside (an evicted one is
    //    restored on demand), and the trajectory each one took is exactly
    //    what a standalone `NemoSystem` with the same config would have
    //    produced — the pool only schedules, it never perturbs.
    println!();
    for &id in &ids {
        let (lfs, score) = pool
            .with_session(id, |nemo| (nemo.lineage().len(), nemo.test_score()))
            .expect("inspect tenant");
        println!("{id}: {lfs} LFs collected, test score {score:.3}");
    }

    let stats = pool.stats();
    println!(
        "\npool stats: {} admitted, {} rounds served, {} evictions, {} restores",
        stats.admitted, stats.rounds, stats.evictions, stats.restores
    );

    // 6. Closing a tenant hands back its final checkpoint — the caller
    //    can archive it with `nemo::persist::save_session` and re-admit
    //    it into any future pool over the same artifacts.
    let ckpt = pool.close(ids[0]).expect("close tenant");
    println!("closed {}: final checkpoint at iteration {}", ids[0], ckpt.iteration);
}

//! Quickstart: run Nemo's full interactive loop on a small sentiment task
//! with a simulated user, and compare against the prevailing Snorkel
//! workflow (random selection, no contextualization).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nemo::baselines::{run_method, Method, RunSpec};
use nemo::data::catalog;
use nemo::prelude::*;

fn main() {
    // 1. A dataset. The catalog regenerates the paper's six evaluation
    //    datasets synthetically; `Profile::Smoke` keeps this example fast.
    let dataset = catalog::build(DatasetName::Amazon, Profile::Smoke, 42);
    println!(
        "dataset: {} — {} unlabeled training examples, {} primitives",
        dataset.name,
        dataset.train.n(),
        dataset.n_primitives
    );

    // 2. Nemo: SEU selection + contextualized learning, 30 interactive
    //    iterations, evaluating the end model every 5.
    let config = IdpConfig { n_iterations: 30, eval_every: 5, seed: 7, ..Default::default() };
    let mut nemo = NemoSystem::new(&dataset, config.clone());
    let mut user = SimulatedUser::default();
    let nemo_curve = nemo.run_with_user(&mut user);

    println!("\nNemo learning curve (iteration → test accuracy):");
    for &(iter, score) in nemo_curve.points() {
        println!("  {iter:>3} → {score:.3}");
    }
    println!("  curve score (mean): {:.3}", nemo_curve.summary());

    // 3. A few of the LFs the (simulated) user created, with lineage.
    println!("\nfirst LFs collected (with their development examples):");
    for rec in nemo.lineage().tracked().iter().take(5) {
        println!(
            "  iteration {:>2}: λ({:?} → {}) from example #{}",
            rec.iteration,
            dataset.primitive_name(rec.lf.z),
            rec.lf.y,
            rec.dev_example
        );
    }

    // 4. The same budget under the prevailing workflow (Snorkel).
    let spec = RunSpec { idp: config, ..Default::default() };
    let snorkel_curve = run_method(Method::Snorkel, &dataset, &spec);
    println!(
        "\nSnorkel (random selection, standard learning): curve score {:.3}",
        snorkel_curve.summary()
    );
    println!(
        "Nemo:                                           curve score {:.3}",
        nemo_curve.summary()
    );
}

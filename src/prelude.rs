//! One-import surface for driving Nemo: `use nemo::prelude::*;`.
//!
//! Re-exports the types every driver program touches — the system facade
//! and its config switches, the selection-engine API, the multi-tenant
//! pool, checkpointing, users, and the LF vocabulary — so examples and
//! downstream binaries don't need to memorize the crate map. Anything
//! deeper (selectors, pipelines, kernels) stays behind its module path.
//!
//! ```
//! use nemo::prelude::*;
//!
//! let dataset = nemo::data::catalog::toy_text(42);
//! let config = IdpConfig { selection: SelectionStrategy::Iws, ..Default::default() };
//! let mut nemo = NemoSystem::new(&dataset, config);
//! nemo.step_with_user(&mut SimulatedUser::default()).unwrap();
//! ```

pub use nemo_core::{
    engine_for, ContextualizerConfig, EngineState, IdpConfig, LearningCurve, NemoSystem,
    PoolConfig, RestoreError, RoundJob, SelectionEngine, SelectionStrategy, Session,
    SessionCheckpoint, SessionError, SessionId, SessionPool, SharedArtifacts, SimulatedUser, User,
};
pub use nemo_data::{Dataset, DatasetName, Profile};
pub use nemo_lf::{Label, PrimitiveLf};
pub use nemo_persist::FileCheckpointStore;

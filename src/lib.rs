//! # nemo — Interactive Data Programming (VLDB 2022 reproduction)
//!
//! A from-scratch Rust implementation of **"Nemo: Guiding and
//! Contextualizing Weak Supervision for Interactive Data Programming"**
//! (Hsieh, Zhang, Ratner; PVLDB 15(13), 2022), including the complete
//! data-programming substrate it runs on and every baseline from the
//! paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use nemo::data::catalog::toy_text;
//! use nemo::prelude::*;
//!
//! // A small 4-cluster sentiment dataset (Figure 3's toy setting).
//! let dataset = toy_text(42);
//!
//! // Nemo = SEU development-data selection + contextualized learning.
//! let config = IdpConfig { n_iterations: 10, eval_every: 5, ..Default::default() };
//! let mut nemo = NemoSystem::new(&dataset, config);
//!
//! // Drive the interactive loop with the paper's simulated user.
//! let mut user = SimulatedUser::default();
//! let curve = nemo.run_with_user(&mut user);
//! assert!(curve.final_score() > 0.5);
//! ```
//!
//! Driving the loop with a *real* user instead:
//!
//! ```
//! use nemo::data::catalog::toy_text;
//! use nemo::prelude::*;
//!
//! let dataset = toy_text(42);
//! let mut nemo = NemoSystem::new(&dataset, IdpConfig::default());
//!
//! // 1. Nemo suggests the most useful development example (out-of-order
//! //    calls return a typed `SessionError` instead of panicking).
//! let x = nemo.suggest_example().unwrap().expect("pool is non-empty");
//!
//! // 2. Inspect it (here: its candidate primitives), optionally explore
//! //    other examples containing a primitive, then write an LF.
//! let z = dataset.train.corpus.primitives_of(x)[0];
//! let _similar = nemo.explore_primitive(z, 5);
//! nemo.submit_lf(PrimitiveLf::new(z, Label::Pos)).unwrap();
//!
//! // 3. Models are re-learned with the LF's development context.
//! assert_eq!(nemo.lineage().len(), 1);
//! ```
//!
//! ## Selection engines
//!
//! Who drives each round is a config switch: [`core::SelectionStrategy`]
//! on [`core::IdpConfig`] picks the [`core::SelectionEngine`] — `Seu`
//! (the reference: SEU example selection, the user writes the LF) or
//! `Iws` (a learned candidate ranker that proposes LFs and learns from
//! accept/reject feedback). Both plug into `NemoSystem`, `SessionPool`,
//! and checkpointing unchanged:
//!
//! ```
//! use nemo::data::catalog::toy_text;
//! use nemo::prelude::*;
//!
//! let dataset = toy_text(42);
//! let config = IdpConfig { selection: SelectionStrategy::Iws, ..Default::default() };
//! let mut nemo = NemoSystem::new(&dataset, config);
//! nemo.step_with_user(&mut SimulatedUser::default()).unwrap();
//! ```
//!
//! ## Multi-tenant serving
//!
//! Production deployments run many users against one immutable artifact
//! set: wrap it in [`core::SharedArtifacts`], share it behind an `Arc`,
//! and let a [`core::SessionPool`] admit, schedule, and checkpoint-evict
//! sessions (see `docs/ARCHITECTURE.md`):
//!
//! ```
//! use std::sync::Arc;
//! use nemo::data::catalog::toy_text;
//! use nemo::prelude::*;
//!
//! let artifacts = Arc::new(SharedArtifacts::new(toy_text(42)));
//! let mut pool = SessionPool::new(&artifacts, PoolConfig::default());
//! let id = pool.admit(IdpConfig::default()).unwrap();
//! pool.run_round(id, &mut SimulatedUser::default()).unwrap();
//! assert_eq!(pool.with_session(id, |nemo| nemo.iteration()).unwrap(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `nemo-core` | the paper's contribution: SEU selector, LF contextualizer, IDP loop, simulated users, `NemoSystem`, multi-tenant `SessionPool` over `SharedArtifacts` |
//! | [`baselines`] | `nemo-baselines` | Snorkel, Snorkel-Abs/Dis, ImplyLoss-L, US, BALD, IWS-LSE, Active WeaSuL, and the unified method runner |
//! | [`labelmodel`] | `nemo-labelmodel` | majority vote, moment-based (MeTaL-style) and EM label models |
//! | [`endmodel`] | `nemo-endmodel` | logistic regression on soft labels, Adam, bootstrap ensembles |
//! | [`lf`] | `nemo-lf` | labels, primitive LFs, label matrix, lineage, metrics |
//! | [`data`] | `nemo-data` | dataset abstraction + the six synthetic catalog datasets |
//! | [`text`] | `nemo-text` | tokenizer, vocabulary, n-grams, TF-IDF |
//! | [`sparse`] | `nemo-sparse` | CSR matrices, distances, inverted index, deterministic RNG, stats |
//! | [`persist`] | `nemo-persist` | crash-safe dataset artifact store, session checkpoint files, durable pool checkpoint stores |

#![warn(missing_docs)]

pub mod prelude;

pub use nemo_baselines as baselines;
pub use nemo_core as core;
pub use nemo_data as data;
pub use nemo_endmodel as endmodel;
pub use nemo_labelmodel as labelmodel;
pub use nemo_lf as lf;
pub use nemo_persist as persist;
pub use nemo_sparse as sparse;
pub use nemo_text as text;

//! Differential property suite for the blocked dense kernel and the
//! posting-range sharded single-pivot kernels.
//!
//! Two independent invariants are held here:
//!
//! 1. **Blocked vs scalar dense reductions** — `DenseBackend::Blocked`
//!    accumulates dot products and squared distances in `DOT_LANES`
//!    independent lanes, so it is *not* bit-identical to the scalar
//!    left-to-right sum; the contract is agreement within `1e-9`
//!    relative (the issue's documented bound) plus bitwise determinism
//!    of each backend against itself. Inputs shorter than `DOT_LANES`
//!    have no lane body at all and must match the scalar sum bitwise.
//! 2. **Sharded vs unsharded single-pivot queries** — the posting-range
//!    sharded sparse kernel and the row-block sharded dense kernel
//!    split work on a fixed shard grid that never depends on the worker
//!    count, so their outputs must be **bit-identical** to the serial
//!    kernels under every `NEMO_THREADS` setting, for both backends,
//!    over random matrices (including the below-`MIN_SHARDED_ROWS`
//!    fallback and pools large enough to actually shard).
//!
//! A full-session check closes the loop: an interactive run (SEU
//! selection + simulated user + contextualized learning) must make
//! identical decisions under every `DistanceBackend × DenseBackend`
//! combination, on a sparse text dataset and on a dense scene dataset.

use nemo::core::config::{ContextualizerConfig, DistanceBackend, IdpConfig};
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::data::catalog::{toy_scene_2d, toy_text};
use nemo::data::Dataset;
use nemo::sparse::dense::{self, DOT_LANES};
use nemo::sparse::distance::MIN_SHARDED_ROWS;
use nemo::sparse::{
    CscIndex, CsrMatrix, DenseBackend, DenseMatrix, Distance, DistanceScratch, SparseVec,
};
use proptest::prelude::*;
use std::sync::Mutex;

const DISTANCES: [Distance; 2] = [Distance::Cosine, Distance::Euclidean];

/// Serializes the tests that mutate `NEMO_THREADS`. The kernels under
/// test are thread-count-invariant (that is the property being checked),
/// so concurrent *readers* in other tests are unaffected — the lock only
/// keeps the mutating tests from clobbering each other's settings.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `NEMO_THREADS` set to each value in turn, restoring the
/// prior setting afterwards.
fn with_thread_counts(counts: &[usize], mut f: impl FnMut(usize)) {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = std::env::var("NEMO_THREADS").ok();
    for &t in counts {
        std::env::set_var("NEMO_THREADS", t.to_string());
        f(t);
    }
    match saved {
        Some(v) => std::env::set_var("NEMO_THREADS", v),
        None => std::env::remove_var("NEMO_THREADS"),
    }
}

fn matrix_from(rows: &[Vec<(u32, f32)>], dim: usize) -> CsrMatrix {
    let svs: Vec<SparseVec> = rows.iter().map(|p| SparseVec::from_pairs(p.clone(), dim)).collect();
    CsrMatrix::from_rows(&svs, dim)
}

// ---------------------------------------------------------------------
// 1. Blocked vs scalar dense reductions.
// ---------------------------------------------------------------------

proptest! {
    /// Blocked dot/sq-euclidean agree with the scalar backend within the
    /// documented 1e-9 relative bound, and each backend is bitwise
    /// deterministic against itself.
    #[test]
    fn prop_blocked_matches_scalar_reductions(
        pairs in proptest::collection::vec((-8.0f32..8.0, -8.0f32..8.0), 0..200),
    ) {
        let a: Vec<f32> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<f32> = pairs.iter().map(|&(_, y)| y).collect();
        let scalar_dot = DenseBackend::Scalar.dot(&a, &b);
        let blocked_dot = DenseBackend::Blocked.dot(&a, &b);
        prop_assert!(
            (scalar_dot - blocked_dot).abs() <= 1e-9 * (1.0 + scalar_dot.abs()),
            "dot diverged: scalar {scalar_dot} blocked {blocked_dot}"
        );
        let scalar_sq = DenseBackend::Scalar.sq_euclidean(&a, &b);
        let blocked_sq = DenseBackend::Blocked.sq_euclidean(&a, &b);
        prop_assert!(
            (scalar_sq - blocked_sq).abs() <= 1e-9 * (1.0 + scalar_sq),
            "sq_euclidean diverged: scalar {scalar_sq} blocked {blocked_sq}"
        );
        // Determinism: repeated calls are bitwise-stable per backend.
        prop_assert_eq!(blocked_dot.to_bits(), DenseBackend::Blocked.dot(&a, &b).to_bits());
        prop_assert_eq!(
            blocked_sq.to_bits(),
            DenseBackend::Blocked.sq_euclidean(&a, &b).to_bits()
        );
        // Below one lane block the blocked kernel is the scalar tail sum,
        // bitwise — up to the sign of zero (`Iterator::sum` folds from
        // `-0.0`, the blocked tail from `+0.0`; `x + 0.0` collapses both).
        if a.len() < DOT_LANES {
            prop_assert_eq!((blocked_dot + 0.0).to_bits(), (scalar_dot + 0.0).to_bits());
            prop_assert_eq!((blocked_sq + 0.0).to_bits(), (scalar_sq + 0.0).to_bits());
        }
        // The free functions are the same kernels the enum dispatches to.
        prop_assert_eq!(blocked_dot.to_bits(), dense::dot_blocked(&a, &b).to_bits());
        prop_assert_eq!(scalar_dot.to_bits(), dense::dot(&a, &b).to_bits());
    }
}

// ---------------------------------------------------------------------
// 2. Sharded vs unsharded single-pivot kernels.
// ---------------------------------------------------------------------

/// Deterministic pseudo-random sparse rows (xorshift-free LCG — cheap and
/// seedable) for pools too large to proptest-generate per case.
fn lcg_sparse_rows(n: usize, dim: u32, nnz: usize, seed: u64) -> Vec<Vec<(u32, f32)>> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|_| {
            (0..nnz)
                .filter_map(|_| {
                    let j = next() % dim;
                    let v = (next() % 2000) as f32 / 250.0 - 4.0;
                    (next() % 4 != 0).then_some((j, v))
                })
                .collect()
        })
        .collect()
}

/// Sharded sparse + dense single-pivot queries must be bit-identical to
/// the serial kernels under every thread count, on a pool large enough
/// to engage the fixed shard grid.
#[test]
fn sharded_kernels_bitwise_identical_across_thread_counts() {
    let n = MIN_SHARDED_ROWS + 731;
    let dim = 48u32;
    let rows = lcg_sparse_rows(n, dim, 5, 0x5eed);
    let m = matrix_from(&rows, dim as usize);
    let norms = m.row_sq_norms();
    let index = CscIndex::from_csr(&m);

    // Dense mirror of the same pool (densified rows).
    let dense_rows: Vec<Vec<f32>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![0.0f32; dim as usize];
            for &(j, x) in r {
                v[j as usize] += x;
            }
            v
        })
        .collect();
    let dm = DenseMatrix::from_rows(&dense_rows);
    let d_norms = dm.row_sq_norms();

    let pivots = [0usize, 99, n - 1];
    for dist in DISTANCES {
        // Serial references, computed once outside any env mutation.
        let mut scratch = DistanceScratch::new();
        let sparse_ref: Vec<Vec<f64>> = pivots
            .iter()
            .map(|&p| {
                let mut out = Vec::new();
                dist.sparse_point_to_all_indexed_into(
                    &m,
                    &index,
                    p,
                    &norms,
                    &mut scratch,
                    &mut out,
                );
                out
            })
            .collect();
        let dense_ref: Vec<Vec<Vec<f64>>> = [DenseBackend::Scalar, DenseBackend::Blocked]
            .iter()
            .map(|&be| {
                pivots
                    .iter()
                    .map(|&p| {
                        let mut out = Vec::new();
                        dist.dense_row_to_all_cached_into_with(
                            be,
                            dm.row(p),
                            d_norms[p],
                            &dm,
                            &d_norms,
                            &mut out,
                        );
                        out
                    })
                    .collect()
            })
            .collect();

        with_thread_counts(&[1, 2, 3, 4, 8], |t| {
            let mut scratch = DistanceScratch::new();
            let mut out = Vec::new();
            for (k, &p) in pivots.iter().enumerate() {
                dist.sparse_point_to_all_indexed_sharded_into(
                    &m,
                    &index,
                    p,
                    &norms,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(out.len(), sparse_ref[k].len());
                for (r, (&got, &want)) in out.iter().zip(&sparse_ref[k]).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{dist:?} NEMO_THREADS={t} pivot {p} row {r}: sharded {got} serial {want}"
                    );
                }
                for (bi, &be) in [DenseBackend::Scalar, DenseBackend::Blocked].iter().enumerate() {
                    dist.dense_row_to_all_sharded_into(
                        be,
                        dm.row(p),
                        d_norms[p],
                        &dm,
                        &d_norms,
                        &mut out,
                    );
                    for (r, (&got, &want)) in out.iter().zip(&dense_ref[bi][k]).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{dist:?} {} NEMO_THREADS={t} pivot {p} row {r}: dense sharded diverged",
                            be.name()
                        );
                    }
                }
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random base rows tiled past `MIN_SHARDED_ROWS` with a random
    /// thread count: the sharded sparse kernel stays bit-identical to
    /// the serial one (and the small un-tiled pool exercises the serial
    /// fallback with the same assertion).
    #[test]
    fn prop_sharded_sparse_bitwise_any_thread_count(
        base in proptest::collection::vec(
            proptest::collection::vec((0u32..32, -4.0f32..4.0), 0..5), 1..16),
        threads in 1usize..9,
        pivot_pick in 0usize..1024,
    ) {
        let tiled: Vec<Vec<(u32, f32)>> = (0..MIN_SHARDED_ROWS + 257)
            .map(|i| base[i % base.len()].clone())
            .collect();
        for rows in [&base, &tiled] {
            let m = matrix_from(rows, 32);
            let norms = m.row_sq_norms();
            let index = CscIndex::from_csr(&m);
            let pivot = pivot_pick % m.n_rows();
            let mut scratch = DistanceScratch::new();
            let (mut serial, mut sharded) = (Vec::new(), Vec::new());
            for dist in DISTANCES {
                dist.sparse_point_to_all_indexed_into(
                    &m, &index, pivot, &norms, &mut scratch, &mut serial);
                with_thread_counts(&[threads], |_| {
                    dist.sparse_point_to_all_indexed_sharded_into(
                        &m, &index, pivot, &norms, &mut scratch, &mut sharded);
                });
                prop_assert_eq!(serial.len(), sharded.len());
                for (r, (&a, &b)) in serial.iter().zip(&sharded).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "{:?} threads {} pivot {} row {}: serial {} sharded {}",
                        dist, threads, pivot, r, a, b
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Full-session differential across every new switch combination.
// ---------------------------------------------------------------------

/// One full run: per-round selections, per-round tuned `p`, final scores.
#[derive(PartialEq, Debug)]
struct Trace {
    selections: Vec<Option<usize>>,
    chosen_ps: Vec<Option<f64>>,
    test_score: f64,
    valid_score: f64,
}

fn run(ds: &Dataset, backend: DistanceBackend, dense_backend: DenseBackend, seed: u64) -> Trace {
    let config = IdpConfig { n_iterations: 8, eval_every: 4, seed, ..Default::default() };
    let mut session = Session::new(ds, config);
    let mut selector = SeuSelector::new();
    let mut user = SimulatedUser::default();
    let mut pipeline = ContextualizedPipeline::new(ContextualizerConfig {
        backend,
        dense_backend,
        ..Default::default()
    });
    let mut selections = Vec::new();
    let mut chosen_ps = Vec::new();
    for _ in 0..8 {
        let rec = session.step(&mut selector, &mut user, &mut pipeline);
        selections.push(rec.selected);
        chosen_ps.push(session.outputs().chosen_p);
    }
    Trace {
        selections,
        chosen_ps,
        test_score: session.test_score(),
        valid_score: session.valid_score(),
    }
}

/// Every `DistanceBackend × DenseBackend` combination drives the same
/// interactive session: identical selections, identical tuned
/// percentiles, identical final scores — on the sparse text dataset
/// (where the dense backend is inert) and on the dense 2-D scene dataset
/// (whose 2-dim rows sit entirely in the blocked kernel's scalar tail,
/// so even Blocked is bitwise-equal there).
#[test]
fn full_session_identical_across_switch_combos() {
    for ds in [toy_text(1), toy_scene_2d(1)] {
        let reference = run(&ds, DistanceBackend::Indexed, DenseBackend::Blocked, 7);
        assert!(
            reference.chosen_ps.iter().any(Option::is_some),
            "{}: contextualizer never tuned p",
            ds.name
        );
        for backend in [DistanceBackend::Indexed, DistanceBackend::Naive] {
            for dense_backend in [DenseBackend::Blocked, DenseBackend::Scalar] {
                let trace = run(&ds, backend, dense_backend, 7);
                assert_eq!(
                    trace,
                    reference,
                    "{}: {:?} × {} diverged from the production combo",
                    ds.name,
                    backend,
                    dense_backend.name()
                );
            }
        }
    }
}

/// The session combo sweep again, under a multi-worker thread setting —
/// the sharded kernels must not perturb an interactive run.
#[test]
fn full_session_stable_under_thread_counts() {
    let ds = toy_text(2);
    let reference = run(&ds, DistanceBackend::Indexed, DenseBackend::Blocked, 3);
    with_thread_counts(&[4], |_| {
        let multi = run(&ds, DistanceBackend::Indexed, DenseBackend::Blocked, 3);
        assert_eq!(multi, reference, "NEMO_THREADS=4 session diverged from the ambient run");
    });
}

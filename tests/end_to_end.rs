//! Cross-crate integration tests: the full IDP loop through the public
//! facade, exercising dataset generation, selection, the simulated user,
//! label/end-model learning, and evaluation together.

use nemo::baselines::{run_method, Method, RunSpec};
use nemo::core::oracle::SimulatedUser;
use nemo::core::{IdpConfig, NemoSystem};
use nemo::data::catalog::{self, toy_text};
use nemo::data::{DatasetName, Profile};
use nemo::lf::Label;

fn quick_spec(seed: u64, iterations: usize) -> RunSpec {
    RunSpec {
        idp: IdpConfig {
            n_iterations: iterations,
            eval_every: iterations / 2,
            seed,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn nemo_system_full_loop_on_toy() {
    let ds = toy_text(42);
    let config = IdpConfig { n_iterations: 20, eval_every: 5, seed: 1, ..Default::default() };
    let mut nemo = NemoSystem::new(&ds, config);
    let mut user = SimulatedUser::default();
    let curve = nemo.run_with_user(&mut user);
    assert_eq!(curve.points().len(), 4);
    assert!(
        curve.final_score() > 0.55,
        "Nemo should beat chance on the toy task, got {}",
        curve.final_score()
    );
    assert!(nemo.lineage().len() >= 15, "most iterations should yield LFs");
    // Contextualization actually engaged.
    assert!(nemo.outputs().chosen_p.is_some());
}

#[test]
fn every_table2_method_runs_on_a_catalog_dataset() {
    let ds = catalog::build(DatasetName::Youtube, Profile::Smoke, 5);
    for method in Method::TABLE2 {
        let curve = run_method(method, &ds, &quick_spec(2, 10));
        assert_eq!(curve.points().len(), 2, "{}", method.name());
        for &(_, score) in curve.points() {
            assert!((0.0..=1.0).contains(&score), "{} score {score}", method.name());
        }
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let ds = catalog::build(DatasetName::Youtube, Profile::Smoke, 5);
    for method in [Method::Nemo, Method::Snorkel, Method::Us] {
        let a = run_method(method, &ds, &quick_spec(7, 12));
        let b = run_method(method, &ds, &quick_spec(7, 12));
        assert_eq!(a.points(), b.points(), "{} not deterministic", method.name());
    }
}

#[test]
fn seeds_change_trajectories() {
    let ds = toy_text(42);
    let a = run_method(Method::Snorkel, &ds, &quick_spec(1, 12));
    let b = run_method(Method::Snorkel, &ds, &quick_spec(2, 12));
    assert_ne!(a.points(), b.points());
}

#[test]
fn lineage_records_are_consistent_with_dataset() {
    let ds = toy_text(9);
    let config = IdpConfig { n_iterations: 15, eval_every: 5, seed: 3, ..Default::default() };
    let mut nemo = NemoSystem::new(&ds, config);
    let mut user = SimulatedUser::default();
    nemo.run_with_user(&mut user);
    for rec in nemo.lineage().tracked() {
        // The LF's primitive is contained in its development example.
        assert!(
            ds.train.corpus.contains(rec.dev_example as usize, rec.lf.z),
            "LF primitive must come from its dev example"
        );
        // The LF's label is the dev example's (oracle) label.
        assert_eq!(rec.lf.y, ds.train.labels[rec.dev_example as usize]);
    }
}

#[test]
fn simulated_user_threshold_controls_lf_quality() {
    let ds = toy_text(11);
    let mean_lf_accuracy = |threshold: f64| -> f64 {
        let spec = RunSpec {
            idp: IdpConfig { n_iterations: 20, eval_every: 10, seed: 5, ..Default::default() },
            user_threshold: threshold,
            noisy_user: None,
        };
        // Use the session API to inspect the lineage afterwards.
        let mut session = nemo::core::IdpSession::new(
            &ds,
            spec.idp.clone(),
            Box::new(nemo::core::RandomSelector),
            Box::new(SimulatedUser::with_threshold(threshold)),
            Box::new(nemo::core::StandardPipeline),
        );
        session.run();
        let accs: Vec<f64> = session
            .lineage()
            .lfs()
            .iter()
            .filter_map(|lf| lf.accuracy_against(&ds.train.corpus, &ds.train.labels))
            .collect();
        accs.iter().sum::<f64>() / accs.len().max(1) as f64
    };
    let low = mean_lf_accuracy(0.5);
    let high = mean_lf_accuracy(0.8);
    assert!(high > low, "higher threshold must yield more accurate LFs ({high:.3} vs {low:.3})");
}

#[test]
fn f1_task_predicts_minority_class() {
    // On the imbalanced SMS task the tuned threshold must let the end
    // model actually predict spam (F1 > 0 requires at least one true
    // positive).
    let ds = catalog::build(DatasetName::Sms, Profile::Smoke, 5);
    assert_eq!(ds.metric, nemo::lf::Metric::F1);
    let curve = run_method(Method::Snorkel, &ds, &quick_spec(11, 40));
    assert!(
        curve.points().iter().any(|&(_, s)| s > 0.0),
        "spam must be predicted at least once along the curve: {:?}",
        curve.points()
    );
}

#[test]
fn interactive_api_and_batch_api_agree_on_state_shape() {
    let ds = toy_text(13);
    let config = IdpConfig { n_iterations: 5, eval_every: 5, seed: 2, ..Default::default() };
    let mut nemo = NemoSystem::new(&ds, config);
    // Drive manually: suggest → (oracle) → submit.
    let mut rng = nemo::sparse::DetRng::new(17);
    let mut user = SimulatedUser::default();
    for _ in 0..5 {
        let Some(x) = nemo.suggest_example().unwrap() else { break };
        match nemo::core::oracle::User::provide_lf(&mut user, x, &ds, &mut rng) {
            Some(lf) => nemo.submit_lf(lf).unwrap(),
            None => nemo.skip().unwrap(),
        }
    }
    assert_eq!(nemo.iteration(), 5);
    assert_eq!(nemo.outputs().train_probs.len(), ds.train.n());
    let score = nemo.test_score();
    assert!((0.0..=1.0).contains(&score));
}

#[test]
fn explore_primitive_returns_only_covered_examples() {
    let ds = toy_text(3);
    let config = IdpConfig::default();
    let mut nemo = NemoSystem::new(&ds, config);
    let z = ds.lexicon[0];
    let sample = nemo.explore_primitive(z, 8);
    assert!(!sample.is_empty());
    for &i in &sample {
        assert!(ds.train.corpus.contains(i as usize, z));
    }
}

#[test]
fn dataset_labels_are_hidden_from_methods_but_not_oracle() {
    // Structural check: the selection view carries no label access path —
    // enforced by convention and verified here by ensuring oracle LFs are
    // label-consistent while selector behavior is label-free (random
    // selection distribution does not depend on a label permutation).
    let ds = toy_text(21);
    let mut flipped = ds.clone();
    for l in &mut flipped.train.labels {
        *l = match *l {
            Label::Pos => Label::Neg,
            Label::Neg => Label::Pos,
        };
    }
    // Same seed, same selector → same selections regardless of labels.
    let select_sequence = |ds: &nemo::data::Dataset| -> Vec<usize> {
        let config = IdpConfig { n_iterations: 6, eval_every: 6, seed: 9, ..Default::default() };
        let mut session = nemo::core::IdpSession::new(
            ds,
            config,
            Box::new(nemo::core::RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(nemo::core::StandardPipeline),
        );
        (0..6).filter_map(|_| session.step().selected).collect()
    };
    assert_eq!(select_sequence(&ds), select_sequence(&flipped));
}

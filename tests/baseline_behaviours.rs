//! Integration tests pinning the qualitative behaviours of the baseline
//! methods — the properties the paper's comparison relies on, checked on
//! small planted datasets so they are fast and deterministic.

use nemo::baselines::{run_method, Method, RunSpec};
use nemo::baselines::{ActiveLearning, UncertaintyAcquisition};
use nemo::core::config::IdpConfig;
use nemo::core::idp::{IdpSession, RandomSelector};
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::StandardPipeline;
use nemo::data::catalog::toy_text;
use nemo::sparse::stats::mean;

fn spec(seed: u64, n: usize) -> RunSpec {
    RunSpec {
        idp: IdpConfig { n_iterations: n, eval_every: n / 2, seed, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn lf_supervision_beats_label_supervision_on_toy() {
    // The IDP-vs-active-learning contrast (paper Sec. 3 / Table 2): with
    // the same query budget, LFs label many examples per query and the
    // weak-supervision pipeline should beat single-label AL on the toy
    // task, averaged over seeds.
    let ds = toy_text(2);
    let mut snorkel = Vec::new();
    let mut us = Vec::new();
    for seed in 0..4 {
        snorkel.push(run_method(Method::Snorkel, &ds, &spec(seed, 20)).summary());
        us.push(run_method(Method::Us, &ds, &spec(seed, 20)).summary());
    }
    assert!(
        mean(&snorkel) > mean(&us),
        "Snorkel {:.3} should beat US {:.3} at equal budget",
        mean(&snorkel),
        mean(&us)
    );
}

#[test]
fn abstain_selector_accelerates_coverage() {
    // Snorkel-Abs exists to cover uncovered data; verify its coverage
    // after a fixed budget is at least Random's.
    let ds = toy_text(3);
    let coverage_of = |method: Method| -> f64 {
        // Re-run through the session API to inspect the matrix.
        let selector: Box<dyn nemo::core::idp::Selector> = match method {
            Method::SnorkelAbs => Box::new(nemo::baselines::AbstainSelector),
            _ => Box::new(RandomSelector),
        };
        let config = IdpConfig { n_iterations: 15, eval_every: 15, seed: 4, ..Default::default() };
        let mut session = IdpSession::new(
            &ds,
            config,
            selector,
            Box::new(SimulatedUser::default()),
            Box::new(StandardPipeline),
        );
        session.run();
        session.matrix().coverage_frac()
    };
    let random_cov = coverage_of(Method::Snorkel);
    let abstain_cov = coverage_of(Method::SnorkelAbs);
    assert!(
        abstain_cov >= random_cov * 0.9,
        "abstain coverage {abstain_cov:.3} vs random {random_cov:.3}"
    );
}

#[test]
fn active_weasul_uses_its_warmup_budget_for_lfs() {
    // AW runs Snorkel for its first 10 iterations; with a 10-iteration
    // budget it must behave like Snorkel (same selection mechanics).
    let ds = toy_text(5);
    let aw = run_method(Method::ActiveWeasul, &ds, &spec(3, 10));
    assert_eq!(aw.points().len(), 2);
    for &(_, s) in aw.points() {
        assert!((0.0..=1.0).contains(&s));
    }
}

#[test]
fn iws_queries_lfs_not_examples() {
    // IWS's budget buys LF feedback; its curve must be well-formed and
    // its behavior deterministic per seed even though its interaction
    // contract differs from the IDP methods.
    let ds = toy_text(5);
    let a = run_method(Method::IwsLse, &ds, &spec(8, 12));
    let b = run_method(Method::IwsLse, &ds, &spec(8, 12));
    assert_eq!(a.points(), b.points());
}

#[test]
fn al_runner_exhausts_pool_gracefully() {
    // More iterations than training examples: the AL loop must not panic
    // and keeps evaluating with the full labeled set.
    let ds = toy_text(6);
    let config = IdpConfig {
        n_iterations: ds.train.n() + 5,
        eval_every: ds.train.n() + 5,
        seed: 1,
        ..Default::default()
    };
    #[allow(deprecated)] // drives the shim directly to pin pool-exhaustion behaviour
    let curve = ActiveLearning::new(UncertaintyAcquisition).run(&ds, &config);
    assert_eq!(curve.points().len(), 1);
    // With every label revealed, AL ≈ fully supervised: decisively
    // better than chance on the toy task.
    assert!(curve.final_score() > 0.7, "full-supervision score {}", curve.final_score());
}

#[test]
fn implyloss_exemplar_supervision_shows_up() {
    // ImplyLoss trains its classifier on (dev example, label) pairs; its
    // predictions on the dev exemplars should agree with the user's
    // labels far above chance.
    let ds = toy_text(7);
    let config = IdpConfig { n_iterations: 12, eval_every: 12, seed: 2, ..Default::default() };
    let mut session = IdpSession::new(
        &ds,
        config,
        Box::new(RandomSelector),
        Box::new(SimulatedUser::default()),
        Box::new(nemo::baselines::ImplyLossPipeline::default()),
    );
    session.run();
    let outputs = session.outputs();
    let tracked = session.lineage().tracked();
    assert!(!tracked.is_empty());
    let agree = tracked
        .iter()
        .filter(|rec| {
            let p = outputs.train_probs[rec.dev_example as usize];
            (p >= 0.5) == (rec.lf.y == nemo::lf::Label::Pos)
        })
        .count();
    assert!(
        agree * 3 >= tracked.len() * 2,
        "classifier should fit most exemplars: {agree}/{}",
        tracked.len()
    );
}

#[test]
fn all_selection_only_methods_share_the_learning_pipeline() {
    // Snorkel, Abs, and Dis differ only in selection; on a fixed LF set
    // their learning must be identical. Verify by checking that with a
    // 1-iteration budget and the same seed the three produce the same
    // *kind* of outputs (scores in range, 1 curve point).
    let ds = toy_text(9);
    for method in [Method::Snorkel, Method::SnorkelAbs, Method::SnorkelDis] {
        let c = run_method(method, &ds, &spec(5, 2));
        // spec(·, 2) evaluates every iteration (eval_every = 1).
        assert_eq!(c.points().len(), 2, "{}", method.name());
        for &(_, s) in c.points() {
            assert!((0.0..=1.0).contains(&s), "{}", method.name());
        }
    }
}

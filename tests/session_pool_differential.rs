//! Differential and stress tests for the multi-tenant `SessionPool`.
//!
//! The pool's contract is that multiplexing changes *scheduling only*:
//! every admitted session must retrace its standalone `NemoSystem` run
//! bit-for-bit — same selections, same chosen percentiles, same posterior
//! and test-score bits — no matter how rounds interleave, how often the
//! session is checkpoint-evicted and restored (in memory or through a
//! real `nemo-persist` file store), how large a batch is, or how many
//! work-stealing workers serve it.
//!
//! Worker counts are exercised two ways: explicitly via
//! `PoolConfig::workers` (pinning {1, 4} inside one process), and
//! implicitly via the default `None`, which follows `NEMO_THREADS` — the
//! CI `test-serial` (`NEMO_THREADS=1`) and `test-multicore`
//! (`NEMO_THREADS=4`) legs re-run this whole suite under both settings.

use std::sync::Arc;

use nemo::core::pool::{PoolConfig, PoolStats, RoundJob, SessionPool};
use nemo::core::{IdpConfig, NemoSystem, SharedArtifacts, SimulatedUser};
use nemo::data::catalog::toy_text;
use nemo::persist::FileCheckpointStore;
use proptest::prelude::*;

/// Everything a run of one session observably produces.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Development example selected each round (`None` = pool exhausted).
    selections: Vec<Option<usize>>,
    /// Contextualizer percentile chosen each round, as bits.
    percentiles: Vec<Option<u64>>,
    /// Final train-posterior bits.
    posterior_bits: Vec<u64>,
    /// Final test score bits.
    test_bits: u64,
}

fn session_cfg(rounds: usize, seed: u64) -> IdpConfig {
    IdpConfig { n_iterations: rounds.max(2), eval_every: 2, seed, ..Default::default() }
}

/// The reference: one session, one `NemoSystem`, serial rounds.
fn standalone_trace(arts: &SharedArtifacts, cfg: &IdpConfig, rounds: usize) -> Trace {
    let mut nemo = NemoSystem::new(arts.dataset(), cfg.clone());
    let mut user = SimulatedUser::default();
    let mut selections = Vec::new();
    let mut percentiles = Vec::new();
    for _ in 0..rounds {
        let rec = nemo.step_with_user(&mut user).expect("standalone loop resolves suggestions");
        selections.push(rec.selected);
        percentiles.push(nemo.outputs().chosen_p.map(f64::to_bits));
    }
    Trace {
        selections,
        percentiles,
        posterior_bits: nemo
            .outputs()
            .train_posterior
            .p_pos_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
        test_bits: nemo.test_score().to_bits(),
    }
}

/// Run `rounds` interleaved rounds of `cfgs.len()` pooled sessions and
/// collect each session's trace. The interleaving rotates by one session
/// per round (and reverses on odd `twist`), so every session experiences
/// different neighbors and different LRU pressure across cases.
fn pooled_traces(
    arts: &SharedArtifacts,
    cfgs: &[IdpConfig],
    rounds: usize,
    pool_config: PoolConfig,
    batched: bool,
    twist: u64,
) -> (Vec<Trace>, PoolStats) {
    let mut pool = SessionPool::new(arts, pool_config);
    let ids: Vec<_> = cfgs.iter().map(|c| pool.admit(c.clone()).expect("admit")).collect();
    let k = ids.len();
    let mut users: Vec<SimulatedUser> = (0..k).map(|_| SimulatedUser::default()).collect();
    let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); k];
    let mut percentiles: Vec<Vec<Option<u64>>> = vec![Vec::new(); k];

    for round in 0..rounds {
        // Deterministic but varied visit order.
        let mut order: Vec<usize> = (0..k).map(|j| (j + round) % k).collect();
        if (twist + round as u64) % 2 == 1 {
            order.reverse();
        }
        if batched {
            // Session j keeps its own user; jobs are laid out in visit
            // order, so sort the (j, user) handles by position in `order`.
            let mut handles: Vec<(usize, &mut SimulatedUser)> =
                users.iter_mut().enumerate().collect();
            handles.sort_by_key(|(j, _)| order.iter().position(|o| o == j).unwrap());
            let mut jobs: Vec<RoundJob<'_>> =
                handles.into_iter().map(|(j, u)| RoundJob::new(ids[j], u)).collect();
            let outcomes = pool.run_rounds(&mut jobs).expect("batch runs");
            for (pos, outcome) in outcomes.iter().enumerate() {
                let j = order[pos];
                assert_eq!(outcome.id, ids[j], "outcomes keep job order");
                selections[j].push(outcome.record.selected);
            }
        } else {
            for &j in &order {
                let rec = pool.run_round(ids[j], &mut users[j]).expect("round runs");
                selections[j].push(rec.selected);
            }
        }
        for j in 0..k {
            let p = pool
                .with_session(ids[j], |nemo| nemo.outputs().chosen_p.map(f64::to_bits))
                .expect("session readable");
            percentiles[j].push(p);
        }
    }

    let stats = pool.stats();
    let traces = (0..k)
        .map(|j| {
            let (posterior_bits, test_bits) = pool
                .with_session(ids[j], |nemo| {
                    (
                        nemo.outputs()
                            .train_posterior
                            .p_pos_slice()
                            .iter()
                            .map(|p| p.to_bits())
                            .collect::<Vec<_>>(),
                        nemo.test_score().to_bits(),
                    )
                })
                .expect("session readable");
            Trace {
                selections: selections[j].clone(),
                percentiles: percentiles[j].clone(),
                posterior_bits,
                test_bits,
            }
        })
        .collect();
    (traces, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaved pooled rounds — serial or work-stealing batches, under
    /// heavy eviction churn — reproduce K isolated serial runs exactly.
    #[test]
    fn pooled_rounds_are_bit_identical_to_isolated_runs(
        seed in 0u64..200,
        k in 2usize..=4,
        rounds in 3usize..=5,
        max_resident in 1usize..=3,
        wide in proptest::bool::ANY,
        batched in proptest::bool::ANY,
    ) {
        let workers = if wide { 4usize } else { 1 };
        let arts = Arc::new(SharedArtifacts::new(toy_text(2)));
        let cfgs: Vec<IdpConfig> =
            (0..k as u64).map(|j| session_cfg(rounds, 1000 + seed * 17 + j)).collect();
        let pool_config = PoolConfig {
            max_resident,
            workers: Some(workers),
            ..Default::default()
        };
        let (traces, stats) =
            pooled_traces(&arts, &cfgs, rounds, pool_config, batched, seed);
        prop_assert_eq!(stats.rounds as usize, k * rounds);
        if max_resident < k {
            prop_assert!(stats.evictions > 0, "undersized pool must evict: {:?}", stats);
            prop_assert!(stats.restores > 0, "undersized pool must restore: {:?}", stats);
        }
        for (j, cfg) in cfgs.iter().enumerate() {
            let want = standalone_trace(&arts, cfg, rounds);
            prop_assert_eq!(
                &traces[j], &want,
                "session {} diverged (seed {} k {} rounds {} cap {} workers {} batched {})",
                j, seed, k, rounds, max_resident, workers, batched
            );
        }
    }
}

/// Default worker count (`PoolConfig::workers = None`) follows the
/// ambient `NEMO_THREADS`; the CI serial/multicore legs re-run this under
/// 1 and 4 threads and the traces must not move.
#[test]
fn ambient_thread_count_does_not_change_traces() {
    let arts = Arc::new(SharedArtifacts::new(toy_text(5)));
    let cfgs: Vec<IdpConfig> = (0..3u64).map(|j| session_cfg(4, 500 + j)).collect();
    let pool_config = PoolConfig { max_resident: 2, workers: None, ..Default::default() };
    let (traces, _) = pooled_traces(&arts, &cfgs, 4, pool_config, true, 0);
    for (j, cfg) in cfgs.iter().enumerate() {
        assert_eq!(traces[j], standalone_trace(&arts, cfg, 4), "session {j} diverged");
    }
}

/// Checkpoint-evict through a real `nemo-persist` file store mid-stream:
/// sessions bounce through disk between rounds (explicitly and under LRU
/// pressure) and still retrace their standalone runs bit-for-bit.
#[test]
fn file_store_evict_restore_mid_stream_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("nemo-pool-difftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let arts = Arc::new(SharedArtifacts::new(toy_text(3)));
    let cfgs: Vec<IdpConfig> = (0..3u64).map(|j| session_cfg(5, 700 + j)).collect();
    let rounds = 5;

    let pool_config = PoolConfig { max_resident: 2, workers: Some(2), ..Default::default() };
    let store = Box::new(FileCheckpointStore::new(&dir));
    let mut pool = SessionPool::with_store(&arts, pool_config, store);
    let ids: Vec<_> = cfgs.iter().map(|c| pool.admit(c.clone()).unwrap()).collect();
    let mut users: Vec<SimulatedUser> = (0..3).map(|_| SimulatedUser::default()).collect();
    let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); 3];

    for round in 0..rounds {
        for (j, &id) in ids.iter().enumerate() {
            let rec = pool.run_round(id, &mut users[j]).unwrap();
            selections[j].push(rec.selected);
        }
        // Mid-stream: force every session through the file store.
        let victim = ids[round % ids.len()];
        pool.evict(victim).unwrap();
        assert!(!pool.is_resident(victim));
        assert!(
            dir.join(format!("session-{}.nemo", victim.raw())).exists(),
            "eviction must write a checkpoint file"
        );
    }
    assert!(pool.stats().evictions >= rounds as u64);
    assert!(pool.stats().restores > 0);

    for (j, cfg) in cfgs.iter().enumerate() {
        let want = standalone_trace(&arts, cfg, rounds);
        assert_eq!(selections[j], want.selections, "session {j} selections diverged");
        let got_bits: Vec<u64> = pool
            .with_session(ids[j], |nemo| {
                nemo.outputs().train_posterior.p_pos_slice().iter().map(|p| p.to_bits()).collect()
            })
            .unwrap();
        assert_eq!(got_bits, want.posterior_bits, "session {j} posterior diverged");
        let got_test = pool.with_session(ids[j], |nemo| nemo.test_score().to_bits()).unwrap();
        assert_eq!(got_test, want.test_bits, "session {j} test score diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance-scale stress case: 64 concurrent sessions over one
/// `Arc<SharedArtifacts>`, scheduled as work-stealing batches through an
/// undersized pool, every one bit-identical to its standalone run.
#[test]
fn sixty_four_sessions_share_one_artifact_set() {
    let arts = Arc::new(SharedArtifacts::new(toy_text(4)));
    let k = 64;
    let rounds = 2;
    let cfgs: Vec<IdpConfig> = (0..k as u64).map(|j| session_cfg(rounds, 9000 + j)).collect();
    let pool_config = PoolConfig { max_resident: 16, workers: Some(4), ..Default::default() };

    let mut pool = SessionPool::new(&arts, pool_config);
    let ids: Vec<_> = cfgs.iter().map(|c| pool.admit(c.clone()).unwrap()).collect();
    let mut users: Vec<SimulatedUser> = (0..k).map(|_| SimulatedUser::default()).collect();
    let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); k];

    for _round in 0..rounds {
        let mut jobs: Vec<RoundJob<'_>> =
            ids.iter().zip(users.iter_mut()).map(|(&id, u)| RoundJob::new(id, u)).collect();
        let outcomes = pool.run_rounds(&mut jobs).unwrap();
        assert_eq!(outcomes.len(), k);
        for (j, outcome) in outcomes.iter().enumerate() {
            selections[j].push(outcome.record.selected);
        }
    }
    assert_eq!(pool.session_count(), k);
    assert!(pool.resident_count() <= 16);
    assert!(pool.stats().evictions > 0, "undersized pool must churn");

    for (j, cfg) in cfgs.iter().enumerate() {
        let want = standalone_trace(&arts, cfg, rounds);
        assert_eq!(selections[j], want.selections, "session {j} selections diverged");
        let got: Vec<u64> = pool
            .with_session(ids[j], |nemo| {
                nemo.outputs().train_posterior.p_pos_slice().iter().map(|p| p.to_bits()).collect()
            })
            .unwrap();
        assert_eq!(got, want.posterior_bits, "session {j} posterior diverged");
    }
}

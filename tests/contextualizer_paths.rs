//! End-to-end differential test for the contextualizer's distance engines.
//!
//! A full interactive `Session` (SEU selection + simulated user +
//! contextualized learning) must make *identical* decisions whether the
//! contextualizer registers LFs through the batched inverted-index engine
//! (`DistanceBackend::Indexed`, the production path) or the per-LF naive
//! row-major scan (`DistanceBackend::Naive`, the pre-index reference):
//! same development examples selected every round, same tuned refinement
//! percentile, same final scores. The two engines are bit-identical by
//! construction, so every assertion here is exact equality — any drift is
//! a kernel bug, not rounding.

use nemo::core::config::{ContextualizerConfig, DistanceBackend, IdpConfig};
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::data::catalog::toy_text;

/// One full run: per-round selections, per-round tuned `p`, final scores.
struct Trace {
    selections: Vec<Option<usize>>,
    chosen_ps: Vec<Option<f64>>,
    test_score: f64,
    valid_score: f64,
}

fn run(backend: DistanceBackend, seed: u64, lfs_per_iteration: usize) -> Trace {
    let ds = toy_text(1);
    let config = IdpConfig {
        n_iterations: 12,
        eval_every: 4,
        seed,
        lfs_per_iteration,
        ..Default::default()
    };
    let mut session = Session::new(&ds, config);
    let mut selector = SeuSelector::new();
    let mut user = SimulatedUser::default();
    let mut pipeline =
        ContextualizedPipeline::new(ContextualizerConfig { backend, ..Default::default() });
    let mut selections = Vec::new();
    let mut chosen_ps = Vec::new();
    for _ in 0..12 {
        let rec = session.step(&mut selector, &mut user, &mut pipeline);
        selections.push(rec.selected);
        chosen_ps.push(session.outputs().chosen_p);
    }
    Trace {
        selections,
        chosen_ps,
        test_score: session.test_score(),
        valid_score: session.valid_score(),
    }
}

fn assert_identical(seed: u64, lfs_per_iteration: usize) {
    let indexed = run(DistanceBackend::Indexed, seed, lfs_per_iteration);
    let naive = run(DistanceBackend::Naive, seed, lfs_per_iteration);
    assert_eq!(
        indexed.selections, naive.selections,
        "selected examples diverged (seed {seed}, {lfs_per_iteration} LFs/round)"
    );
    assert_eq!(
        indexed.chosen_ps, naive.chosen_ps,
        "tuned percentile diverged (seed {seed}, {lfs_per_iteration} LFs/round)"
    );
    assert_eq!(indexed.test_score, naive.test_score, "test score diverged (seed {seed})");
    assert_eq!(indexed.valid_score, naive.valid_score, "valid score diverged (seed {seed})");
    // The run actually collected LFs and tuned p (a vacuous trace would
    // make this test pass trivially).
    assert!(
        indexed.chosen_ps.iter().any(Option::is_some),
        "contextualizer never tuned p (seed {seed})"
    );
}

#[test]
fn full_session_identical_across_engines() {
    for seed in [1u64, 5, 9] {
        assert_identical(seed, 1);
    }
}

#[test]
fn full_session_identical_across_engines_multi_lf_rounds() {
    // lfs_per_iteration > 1 registers several LFs per round, exercising
    // real multi-pivot batches through `Contextualizer::register_batch`.
    assert_identical(3, 3);
}

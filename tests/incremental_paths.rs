//! End-to-end differential test for the two incremental switches this PR
//! adds, in the style of `tests/contextualizer_paths.rs`: a full
//! interactive `Session` (SEU selection + simulated user + contextualized
//! learning with the EM label model) must make *identical decisions* —
//! same development example selected every round, same tuned refinement
//! percentile — under
//!
//! - [`SeuScoring::DirtySet`] (cached dirty-set scoring) vs
//!   [`SeuScoring::Full`] (per-round full-pool rescore),
//! - [`WarmStart::Warm`] (EM chained across tune_p grid points) vs
//!   [`WarmStart::Cold`] (every fit from scratch), and
//! - [`RefinementCaching::Incremental`] (cross-round refined-column
//!   cache) vs [`RefinementCaching::Rebuild`] (refilter every grid
//!   point's columns each round) — this pair is bit-identical by
//!   construction; `tests/refine_cache_differential.rs` holds the
//!   fine-grained properties, and
//! - [`PosteriorDedup::Class`] (one validation predict per score
//!   equivalence class) vs [`PosteriorDedup::PerPoint`] (one per grid
//!   point) — also bit-identical by construction;
//!   `tests/matrix_cow_differential.rs` holds the fine-grained
//!   properties.
//!
//! Scores are asserted close rather than bitwise equal: the dirty-set
//! cache drifts by bounded rounding steps and warm EM reconverges within
//! its tolerance. The warm/cold comparison runs on the Amazon quick
//! workload, where the label matrices are well-conditioned enough that
//! EM's fixed point is effectively unique, so cross-round seeding lands
//! exactly where cold restarts land — on degenerate few-vote matrices
//! (toy early rounds) EM is genuinely multimodal and warm seeding
//! instead *tracks the incumbent basin* by design (see
//! `Contextualizer::tune_p`), which is why this comparison does not run
//! on the toy dataset. Everything here is deterministic: a divergence
//! is a real regression, never flake.

use nemo::core::config::{
    ContextualizerConfig, IdpConfig, LabelModelKind, PosteriorDedup, RefinementCaching, SeuScoring,
    WarmStart,
};
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::data::catalog::{build, toy_text, DatasetName, Profile};
use nemo::data::Dataset;

/// One full run: per-round selections, per-round tuned `p`, final scores.
struct Trace {
    selections: Vec<Option<usize>>,
    chosen_ps: Vec<Option<f64>>,
    test_score: f64,
    valid_score: f64,
}

fn run(
    ds: &Dataset,
    scoring: SeuScoring,
    warm_start: WarmStart,
    refinement: RefinementCaching,
    posterior_dedup: PosteriorDedup,
    seed: u64,
) -> Trace {
    let config = IdpConfig {
        n_iterations: 12,
        eval_every: 4,
        seed,
        // The EM label model is the one warm-starting accelerates; the
        // closed-form default (Metal) would make WarmStart a no-op.
        label_model: LabelModelKind::Generative,
        ..Default::default()
    };
    let mut session = Session::new(ds, config);
    let mut selector = SeuSelector::new().with_scoring(scoring);
    let mut user = SimulatedUser::default();
    let mut pipeline = ContextualizedPipeline::new(ContextualizerConfig {
        warm_start,
        refinement,
        posterior_dedup,
        ..Default::default()
    });
    let mut selections = Vec::new();
    let mut chosen_ps = Vec::new();
    for _ in 0..12 {
        let rec = session.step(&mut selector, &mut user, &mut pipeline);
        selections.push(rec.selected);
        chosen_ps.push(session.outputs().chosen_p);
    }
    Trace {
        selections,
        chosen_ps,
        test_score: session.test_score(),
        valid_score: session.valid_score(),
    }
}

fn assert_identical_decisions(a: &Trace, b: &Trace, what: &str, seed: u64) {
    assert_eq!(a.selections, b.selections, "selected examples diverged ({what}, seed {seed})");
    assert_eq!(a.chosen_ps, b.chosen_ps, "tuned percentile diverged ({what}, seed {seed})");
    assert!(
        (a.test_score - b.test_score).abs() < 0.02,
        "test score diverged ({what}, seed {seed}): {} vs {}",
        a.test_score,
        b.test_score
    );
    assert!(
        (a.valid_score - b.valid_score).abs() < 0.02,
        "valid score diverged ({what}, seed {seed}): {} vs {}",
        a.valid_score,
        b.valid_score
    );
    assert!(
        a.chosen_ps.iter().any(Option::is_some),
        "contextualizer never tuned p ({what}, seed {seed})"
    );
}

#[test]
fn full_session_identical_dirty_set_vs_full_rescore() {
    let ds = toy_text(1);
    for seed in [1u64, 7] {
        let reference = run(
            &ds,
            SeuScoring::Full,
            WarmStart::Cold,
            RefinementCaching::Rebuild,
            PosteriorDedup::PerPoint,
            seed,
        );
        for (scoring, refinement, posterior_dedup, what) in [
            (
                SeuScoring::DirtySet,
                RefinementCaching::Rebuild,
                PosteriorDedup::PerPoint,
                "dirty-set vs full",
            ),
            (
                SeuScoring::Full,
                RefinementCaching::Incremental,
                PosteriorDedup::PerPoint,
                "refine-cache vs rebuild",
            ),
            (
                SeuScoring::Full,
                RefinementCaching::Rebuild,
                PosteriorDedup::Class,
                "posterior dedup vs per-point",
            ),
        ] {
            let trace = run(&ds, scoring, WarmStart::Cold, refinement, posterior_dedup, seed);
            assert_identical_decisions(&trace, &reference, what, seed);
        }
    }
}

#[test]
fn full_session_identical_warm_vs_cold_and_combined() {
    let ds = build(DatasetName::Amazon, Profile::Quick, 3);
    for seed in [7u64, 13] {
        let reference = run(
            &ds,
            SeuScoring::Full,
            WarmStart::Cold,
            RefinementCaching::Rebuild,
            PosteriorDedup::PerPoint,
            seed,
        );
        for (scoring, warm_start, refinement, posterior_dedup, what) in [
            (
                SeuScoring::Full,
                WarmStart::Warm,
                RefinementCaching::Rebuild,
                PosteriorDedup::PerPoint,
                "warm vs cold",
            ),
            (
                SeuScoring::DirtySet,
                WarmStart::Warm,
                RefinementCaching::Incremental,
                PosteriorDedup::Class,
                "all production switches",
            ),
        ] {
            let trace = run(&ds, scoring, warm_start, refinement, posterior_dedup, seed);
            assert_identical_decisions(&trace, &reference, what, seed);
        }
    }
}

/// The production defaults are exactly the switches this test toggles —
/// make sure the default-constructed components run them.
#[test]
fn production_defaults_are_the_incremental_paths() {
    assert_eq!(SeuSelector::new().scoring, SeuScoring::DirtySet);
    assert_eq!(ContextualizerConfig::default().warm_start, WarmStart::Warm);
    assert_eq!(ContextualizerConfig::default().refinement, RefinementCaching::Incremental);
    assert_eq!(ContextualizerConfig::default().posterior_dedup, PosteriorDedup::Class);
}

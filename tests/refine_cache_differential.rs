//! Differential property suite for the cross-round refined-column cache
//! ([`RefinementCaching::Incremental`] vs [`RefinementCaching::Rebuild`]).
//!
//! The cache serves each `(grid point, LF)` pair's filtered train/valid
//! columns keyed by the radius bits and the raw column's construction
//! token, so its correctness claim is **bitwise**: over any sequence of
//! rounds — lineage growth (new LFs), radius-unchanged rounds (repeat
//! tunes), radius-changed rounds (an edited percentile grid), and
//! raw-matrix replacement (token misses) — the incremental path must
//! produce refined matrices, tuned percentiles, validation scores, and
//! dedup fit counts identical to refiltering everything from scratch.
//! Non-vacuity is asserted through the cache counters: warm rounds must
//! actually hit, and a grown lineage must refilter only the new LFs.
//!
//! The suite also pins the empty-validation-split tie-break of `tune_p`:
//! with no validation signal the *largest* percentile in the grid wins
//! explicitly (widest coverage), not whatever the grid order would
//! accidentally select (the pre-fix `>=` scan kept the last grid point).

use nemo::core::config::{ContextualizerConfig, IdpConfig, LabelModelKind, RefinementCaching};
use nemo::core::contextualizer::Contextualizer;
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::data::catalog::toy_text;
use nemo::data::{Dataset, Features, Split};
use nemo::labelmodel::GenerativeModel;
use nemo::lf::{Label, LabelMatrix, LfColumn, Lineage, Metric, PrimitiveCorpus, PrimitiveLf};
use nemo::sparse::{CsrMatrix, DetRng, SparseVec};
use proptest::prelude::*;

/// Assert two label matrices are entry-for-entry identical (stronger than
/// `==`, which may short-circuit through construction tokens).
fn assert_matrices_bit_identical(a: &LabelMatrix, b: &LabelMatrix, what: &str) {
    assert_eq!(a.n_lfs(), b.n_lfs(), "{what}: LF count");
    assert_eq!(a.n_examples(), b.n_examples(), "{what}: example count");
    for j in 0..a.n_lfs() {
        assert_eq!(a.column(j).entries(), b.column(j).entries(), "{what}: column {j}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn prop_incremental_matches_rebuild_over_lineage_growth(
        seed in 0u64..1_000_000,
        rounds in 2usize..6,
        grid_mutation_prob in 0.0f64..0.6,
    ) {
        let ds = toy_text(2);
        let mut rng = DetRng::new(seed);
        let mut incr = Contextualizer::new(ContextualizerConfig::default());
        let mut rebuild = Contextualizer::new(ContextualizerConfig {
            refinement: RefinementCaching::Rebuild,
            ..Default::default()
        });
        let model = GenerativeModel::default();
        let mut lineage = Lineage::new();
        let mut matrix = LabelMatrix::new(ds.train.n());
        for round in 0..rounds {
            // Lineage growth: 1 new LF on the first round (tune_p needs a
            // non-empty matrix), 0–2 afterwards, from random primitives
            // anchored at random development examples.
            let n_new = if round == 0 { 1 } else { rng.index(3) };
            for _ in 0..n_new {
                let z = rng.index(ds.n_primitives) as u32;
                let lf = PrimitiveLf::new(z, Label::from_bool(rng.bernoulli(0.5)));
                lineage.record(lf, rng.index(ds.train.n()) as u32, round as u32);
                matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
            }
            // Radius-changed rounds: occasionally edit one grid
            // percentile (identically on both contextualizers), which
            // must invalidate exactly that grid slot through the radius
            // key while the other slots keep hitting.
            if round > 0 && rng.bernoulli(grid_mutation_prob) {
                let k = rng.index(incr.config.p_grid.len());
                let p = (rng.uniform() * 100.0).clamp(0.0, 100.0);
                incr.config.p_grid[k] = p;
                rebuild.config.p_grid[k] = p;
            }
            incr.sync(&lineage, &ds);
            rebuild.sync(&lineage, &ds);

            let (ti, vi) = incr.refined_grid_matrices(&matrix, ds.valid.n());
            let (tr, vr) = rebuild.refined_grid_matrices(&matrix, ds.valid.n());
            for (k, ((a, b), (c, d))) in ti.iter().zip(&tr).zip(vi.iter().zip(&vr)).enumerate() {
                assert_matrices_bit_identical(a, b, &format!("round {round} train k={k}"));
                assert_matrices_bit_identical(c, d, &format!("round {round} valid k={k}"));
            }

            let tuned_i = incr.tune_p(&matrix, &ds, &model, ds.prior());
            let tuned_r = rebuild.tune_p(&matrix, &ds, &model, ds.prior());
            prop_assert_eq!(tuned_i.p, tuned_r.p, "round {}: tuned percentile", round);
            prop_assert_eq!(
                tuned_i.valid_score.to_bits(),
                tuned_r.valid_score.to_bits(),
                "round {}: validation score", round
            );
            assert_matrices_bit_identical(
                &tuned_i.train_matrix,
                &tuned_r.train_matrix,
                &format!("round {round} tuned matrix"),
            );
            prop_assert_eq!(
                incr.tune_fits(), rebuild.tune_fits(),
                "round {}: dedup resolved differently", round
            );
        }
        // Non-vacuity: the incremental run must have served at least one
        // warm column from the cache (every tune_p after the first reuses
        // the grid matrices built just above it).
        prop_assert!(incr.refine_cache_stats().hits > 0, "cache never hit");
        prop_assert_eq!(rebuild.refine_cache_stats().hits, 0, "rebuild path must not hit");
    }
}

/// Raw-matrix replacement: rebuilding the raw matrix from the same LFs
/// gives bitwise-equal columns with *fresh* construction tokens, so every
/// cache slot must miss (the token is the staleness guard, not a content
/// hash) — and the refiltered output must still be identical.
#[test]
fn raw_matrix_token_miss_refilters_without_staleness() {
    let ds = toy_text(1);
    let mut rng = DetRng::new(31);
    let mut lineage = Lineage::new();
    for round in 0..5u32 {
        let z = rng.index(ds.n_primitives) as u32;
        lineage.record(
            PrimitiveLf::new(z, Label::from_bool(rng.bernoulli(0.5))),
            rng.index(ds.train.n()) as u32,
            round,
        );
    }
    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(&lineage, &ds);
    let grid = ctx.config.p_grid.len();
    let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
    let first = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let (t1, v1) = ctx.refined_grid_matrices(&first, ds.valid.n());
    // Same content, new tokens: every slot re-keys.
    let second = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
    let (t2, v2) = ctx.refined_grid_matrices(&second, ds.valid.n());
    for (k, ((a, b), (c, d))) in t1.iter().zip(&t2).zip(v1.iter().zip(&v2)).enumerate() {
        assert_matrices_bit_identical(a, b, &format!("train k={k}"));
        assert_matrices_bit_identical(c, d, &format!("valid k={k}"));
    }
    let stats = ctx.refine_cache_stats();
    assert_eq!(stats.hits, 0, "token misses must never be served as hits");
    assert_eq!(stats.refilters, 2 * grid * 5, "both rounds refilter every slot");
    // Third round with a token-stable matrix: everything hits.
    ctx.refined_grid_matrices(&second, ds.valid.n());
    assert_eq!(ctx.refine_cache_stats().hits, grid * 5);
}

/// Full-session differential: an interactive `Session` (SEU selection +
/// simulated user + contextualized EM learning) must make identical
/// decisions — same development example selected every round, same tuned
/// percentile — under `Incremental` and `Rebuild`, and the incremental
/// run must refilter each `(grid point, LF)` slot exactly once (lineage
/// is append-only and the session's raw matrix is token-stable, so every
/// later round serves cached columns).
#[test]
fn sessions_select_identically_under_both_refinement_paths() {
    let ds = toy_text(3);
    for seed in [2u64, 11] {
        let mut traces = Vec::new();
        let mut stats = Vec::new();
        for refinement in [RefinementCaching::Incremental, RefinementCaching::Rebuild] {
            let config = IdpConfig {
                n_iterations: 10,
                eval_every: 5,
                seed,
                label_model: LabelModelKind::Generative,
                ..Default::default()
            };
            let mut session = Session::new(&ds, config);
            let mut selector = SeuSelector::new();
            let mut user = SimulatedUser::default();
            let mut pipeline = ContextualizedPipeline::new(ContextualizerConfig {
                refinement,
                ..Default::default()
            });
            let mut trace = Vec::new();
            for _ in 0..10 {
                let rec = session.step(&mut selector, &mut user, &mut pipeline);
                trace.push((rec.selected, session.outputs().chosen_p));
            }
            trace.push((None, Some(session.test_score())));
            traces.push(trace);
            stats.push((pipeline.contextualizer().refine_cache_stats(), session.lineage().len()));
        }
        assert_eq!(traces[0], traces[1], "seed {seed}: decisions diverged");
        let (incr_stats, n_lfs) = stats[0];
        let grid = ContextualizerConfig::default().p_grid.len();
        assert_eq!(
            incr_stats.refilters,
            grid * n_lfs,
            "seed {seed}: warm rounds refiltered cached columns"
        );
        assert!(incr_stats.hits > 0, "seed {seed}: cache never hit");
    }
}

/// A tiny hand-built dataset over 4 primitives whose validation split is
/// empty (the degenerate deployment where no labeled data exists yet).
fn dataset_with_empty_valid(p_grid: Vec<f64>) -> (Dataset, ContextualizerConfig) {
    let docs: Vec<Vec<u32>> =
        vec![vec![0], vec![0, 1], vec![1], vec![2], vec![0, 2], vec![1, 3], vec![3], vec![2, 3]];
    let n_primitives = 4;
    let features_of = |docs: &[Vec<u32>]| {
        let rows: Vec<SparseVec> = docs
            .iter()
            .map(|d| SparseVec::from_pairs(d.iter().map(|&z| (z, 1.0)).collect(), n_primitives))
            .collect();
        Features::from_csr(CsrMatrix::from_rows(&rows, n_primitives))
    };
    let labels: Vec<Label> =
        docs.iter().map(|d| Label::from_bool(d.contains(&0) || d.contains(&1))).collect();
    let split_of = |docs: &[Vec<u32>], labels: &[Label]| Split {
        labels: labels.to_vec(),
        features: features_of(docs),
        corpus: PrimitiveCorpus::new(docs.to_vec(), n_primitives),
        clusters: vec![0; docs.len()],
    };
    let train = split_of(&docs, &labels);
    let valid = split_of(&[], &[]);
    let test = split_of(&docs[..2], &labels[..2]);
    let ds = Dataset {
        name: "empty-valid".into(),
        metric: Metric::Accuracy,
        train,
        valid,
        test,
        n_primitives,
        primitive_names: (0..n_primitives).map(|z| format!("z{z}")).collect(),
        lexicon: Vec::new(),
        class_prior_pos: 0.5,
    };
    ds.validate();
    let config = ContextualizerConfig { p_grid, ..Default::default() };
    (ds, config)
}

/// Regression for the degenerate `tune_p` tie-break: with an empty
/// validation split every grid point scores a vacuous 0.0, and the
/// pre-fix `>=` scan silently kept whatever percentile sat *last* in the
/// grid. The fixed behaviour selects the *largest* percentile (widest
/// coverage) explicitly, under both refinement paths, with the vacuous
/// score reported as exactly 0.0.
#[test]
fn empty_validation_split_selects_widest_coverage_explicitly() {
    // Deliberately unsorted grid with the largest percentile in the
    // middle: the pre-fix code returns 25.0 (last), the fix 100.0.
    let (ds, config) = dataset_with_empty_valid(vec![50.0, 100.0, 25.0]);
    for refinement in [RefinementCaching::Incremental, RefinementCaching::Rebuild] {
        let mut ctx = Contextualizer::new(ContextualizerConfig { refinement, ..config.clone() });
        let mut lineage = Lineage::new();
        for (z, dev) in [(0u32, 0u32), (1, 2), (2, 3)] {
            lineage.record(PrimitiveLf::new(z, Label::Pos), dev, 0);
        }
        ctx.sync(&lineage, &ds);
        let lfs: Vec<PrimitiveLf> = lineage.tracked().iter().map(|r| r.lf).collect();
        let matrix = LabelMatrix::from_lfs(&lfs, &ds.train.corpus);
        let tuned = ctx.tune_p(&matrix, &ds, &GenerativeModel::default(), ds.prior());
        assert_eq!(tuned.p, 100.0, "{refinement:?}: widest coverage must win");
        assert_eq!(tuned.valid_score, 0.0, "{refinement:?}: score is vacuously zero");
        // p = 100 keeps every raw vote: refinement must be the identity.
        assert_matrices_bit_identical(
            &tuned.train_matrix,
            &matrix,
            &format!("{refinement:?} tuned matrix"),
        );
    }
}

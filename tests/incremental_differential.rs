//! Differential property suite for the two incremental paths this repo's
//! contextualized rounds run on:
//!
//! 1. **Dirty-set SEU scoring** (`SeuScoring::DirtySet`) — full-pool
//!    utilities served from the selector's score cache, which applies
//!    only the changed score-table rows' deltas to the affected
//!    candidates' cached components, must match rebuilding the score
//!    table and rescoring every example from the same aggregates: within
//!    `1e-9` on delta rounds (the in-place sums drift by rounding steps,
//!    re-anchored periodically) and **bit-identical** on exact rounds
//!    (cache builds, rebuild fallbacks, dense-change bails). The
//!    properties drive random `(ψ, ŷ)` perturbation sequences (sparse and
//!    dense, with and without newly collected LFs) through a
//!    [`SeuAggregates`] cache, exactly the traffic a learning loop
//!    produces.
//! 2. **Warm-started EM** (`WarmStart::Warm`) — `GenerativeModel::fit_em`
//!    seeded from a previous fit must converge to the same fixed point as
//!    a cold fit, within the EM tolerance (not bitwise — the iteration
//!    paths differ), over random planted label matrices and random seed
//!    sources (the same matrix's fit, and a perturbed matrix's fit).
//!
//! The full-session counterpart lives in `tests/incremental_paths.rs`.

use nemo::core::config::IdpConfig;
use nemo::core::idp::{ModelOutputs, SelectionView};
use nemo::core::session::{Session, SeuAggregates};
use nemo::core::seu::SeuSelector;
use nemo::core::user_model::UserModelKind;
use nemo::core::utility::UtilityKind;
use nemo::data::catalog::toy_text;
use nemo::data::Dataset;
use nemo::labelmodel::{FittedLabelModel, GenerativeModel, Posterior};
use nemo::lf::{Label, LabelMatrix, LfColumn, Lineage, PrimitiveLf};
use nemo::sparse::DetRng;
use proptest::prelude::*;

/// Random model outputs: perturb a fraction of examples' posterior and
/// end-model probability, leaving the rest bitwise untouched (the dirty
/// pattern `SeuAggregates::sync` keys on).
fn perturb_outputs(prev: &ModelOutputs, ds: &Dataset, frac: f64, rng: &mut DetRng) -> ModelOutputs {
    let n = ds.train.n();
    let mut p_pos: Vec<f64> = (0..n).map(|i| prev.train_posterior.p_pos(i)).collect();
    let mut probs = prev.train_probs.clone();
    for i in 0..n {
        if rng.bernoulli(frac) {
            p_pos[i] = 0.01 + 0.98 * rng.uniform();
            probs[i] = rng.uniform();
        }
    }
    ModelOutputs {
        train_posterior: Posterior::new(p_pos),
        train_probs: probs,
        valid_pred: prev.valid_pred.clone(),
        test_pred: prev.test_pred.clone(),
        chosen_p: None,
    }
}

/// Assert the dirty-set cache matches a cold table rebuild + rescore from
/// the same aggregates: infinities exactly, finite scores within fp-drift
/// tolerance (delta rounds accumulate one rounding step per in-place
/// update; exact rounds are bitwise equal, which the tolerance subsumes).
fn assert_scores_match(
    ds: &Dataset,
    cache: &SeuAggregates,
    lineage: &Lineage,
    matrix: &LabelMatrix,
    outputs: &ModelOutputs,
    dirty_sel: &mut SeuSelector,
    round: usize,
) -> Result<(), String> {
    let excluded = vec![false; ds.train.n()];
    let view = SelectionView {
        ds,
        lineage,
        matrix,
        outputs,
        excluded: &excluded,
        iteration: round,
        aggs: Some(cache),
    };
    let (um, ut) = (dirty_sel.user_model, dirty_sel.utility);
    let cold_sel = SeuSelector::with(um, ut);
    let all: Vec<usize> = (0..ds.train.n()).collect();
    let cold = cold_sel.scores(&view, cache.aggs(), &all);
    let cached = dirty_sel.scores_cached(&view).expect("view carries aggregates");
    for (x, (a, b)) in cached.iter().zip(&cold).enumerate() {
        if a.is_finite() || b.is_finite() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "round {} x {} ({:?}/{:?}): dirty-set {} vs cold {}",
                round,
                x,
                um,
                ut,
                a,
                b
            );
        } else {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "round {} x {}: {} vs {}", round, x, a, b);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn prop_dirty_set_scores_bit_identical_to_full_rescore(
        seed in 0u64..1_000_000,
        rounds in 2usize..7,
        frac in 0.0f64..0.9,
        lf_prob in 0.0f64..1.0,
    ) {
        let ds = toy_text(2);
        let mut rng = DetRng::new(seed);
        let mut lineage = Lineage::new();
        let mut matrix = LabelMatrix::new(ds.train.n());
        let mut outputs = ModelOutputs::initial(&ds);
        let mut cache = SeuAggregates::new(&ds, &outputs);
        // Two selector configurations: the paper default (normalized) and
        // the multi-LF indicator (unnormalized, thresholded weights).
        let mut default_sel = SeuSelector::new();
        let mut multi_sel =
            SeuSelector::with(UserModelKind::MultiLfIndicator, UtilityKind::Full);
        for round in 0..rounds {
            // Occasionally collect an LF so the lineage-dirty path (a new
            // (z, y) zeroes its row's utility) is exercised too.
            if rng.bernoulli(lf_prob) {
                let z = rng.index(ds.n_primitives) as u32;
                let lf = PrimitiveLf::new(z, Label::from_bool(rng.bernoulli(0.5)));
                lineage.record(lf, rng.index(ds.train.n()) as u32, round as u32);
                matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
            }
            outputs = perturb_outputs(&outputs, &ds, frac, &mut rng);
            cache.sync(&ds, &outputs);
            assert_scores_match(
                &ds, &cache, &lineage, &matrix, &outputs, &mut default_sel, round,
            )?;
            assert_scores_match(
                &ds, &cache, &lineage, &matrix, &outputs, &mut multi_sel, round,
            )?;
        }
    }
}

/// Non-vacuity: under *localized* perturbations (a handful of examples
/// per round — the paper's "few primitives perturbed per development
/// cycle" pattern) the dirty-set cache must actually reuse most cached
/// utilities, not silently fall back to full rescoring.
#[test]
fn localized_perturbations_reuse_cached_scores() {
    let ds = toy_text(2);
    let mut rng = DetRng::new(42);
    let lineage = Lineage::new();
    let matrix = LabelMatrix::new(ds.train.n());
    let mut outputs = ModelOutputs::initial(&ds);
    let mut cache = SeuAggregates::new(&ds, &outputs);
    let mut sel = SeuSelector::new();
    let excluded = vec![false; ds.train.n()];
    for round in 0..12 {
        // Perturb exactly 3 examples' model state.
        let n = ds.train.n();
        let mut p_pos: Vec<f64> = (0..n).map(|i| outputs.train_posterior.p_pos(i)).collect();
        let mut probs = outputs.train_probs.clone();
        for _ in 0..3 {
            let i = rng.index(n);
            p_pos[i] = 0.01 + 0.98 * rng.uniform();
            probs[i] = rng.uniform();
        }
        outputs = ModelOutputs {
            train_posterior: Posterior::new(p_pos),
            train_probs: probs,
            valid_pred: outputs.valid_pred.clone(),
            test_pred: outputs.test_pred.clone(),
            chosen_p: None,
        };
        cache.sync(&ds, &outputs);
        let view = SelectionView {
            ds: &ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs: &outputs,
            excluded: &excluded,
            iteration: round,
            aggs: Some(&cache),
        };
        let cold = SeuSelector::new().scores(&view, cache.aggs(), &(0..n).collect::<Vec<usize>>());
        let cached = sel.scores_cached(&view).expect("aggregates present");
        for (x, (a, b)) in cached.iter().zip(&cold).enumerate() {
            if a.is_finite() || b.is_finite() {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "round {round} x {x}: {a} vs {b}"
                );
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round} x {x}");
            }
        }
    }
    let stats = sel.dirty_stats();
    assert_eq!(stats.full_rescores, 1, "only the cache build may recompute everything");
    assert_eq!(stats.delta_rounds, 11, "every later round must take the delta path");
    // The delta path's total posting-level work must undercut what full
    // rescoring would have spent (11 rounds x nnz).
    let nnz = ds.train.corpus.total_postings() as u64;
    assert!(
        stats.incidence_updates < 11 * nnz / 2,
        "delta work {} vs full-rescore work {} ({stats:?})",
        stats.incidence_updates,
        11 * nnz
    );
}

/// Random planted label matrix: `n` examples, per-LF accuracy/coverage.
fn planted_matrix(n: usize, specs: &[(f64, f64)], rng: &mut DetRng) -> LabelMatrix {
    let labels: Vec<Label> = (0..n).map(|_| Label::from_bool(rng.bernoulli(0.5))).collect();
    let mut matrix = LabelMatrix::new(n);
    for &(acc, cov) in specs {
        let mut entries = Vec::new();
        for (i, &y) in labels.iter().enumerate() {
            if rng.bernoulli(cov) {
                let vote = if rng.bernoulli(acc) { y.sign() } else { y.flip().sign() };
                entries.push((i as u32, vote));
            }
        }
        matrix.push(LfColumn::new(entries));
    }
    matrix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_warm_em_parameters_match_cold_within_tolerance(
        seed in 0u64..1_000_000,
        n_lfs in 2usize..6,
        drop in 0.0f64..0.3,
    ) {
        let mut rng = DetRng::new(seed);
        let specs: Vec<(f64, f64)> = (0..n_lfs)
            .map(|_| (0.6 + 0.3 * rng.uniform(), 0.2 + 0.5 * rng.uniform()))
            .collect();
        let matrix = planted_matrix(600, &specs, &mut rng);
        // Uncapped model: warm/cold equivalence is a statement about the
        // shared fixed point, so both fits must actually reach it.
        let model = GenerativeModel { n_iters: 5000, ..Default::default() };
        let (cold, cold_iters) = model.fit_em(&matrix, [0.5, 0.5], None);
        prop_assert!(cold_iters < 5000, "cold fit never converged");

        // Seed source A: the cold fit itself (the within-round chaining
        // case — tune_p's adjacent grid points share most of the matrix).
        let (warm_same, same_iters) =
            model.fit_em(&matrix, [0.5, 0.5], Some(cold.lf_accuracies()));
        prop_assert!(
            same_iters <= 3,
            "re-fit from the fixed point took {} iterations",
            same_iters
        );

        // Seed source B: a fit of a *perturbed* matrix (the cross-round
        // case — the previous round's matrix differs by dropped votes).
        let perturbed = {
            let mut m = LabelMatrix::new(matrix.n_examples());
            for col in matrix.columns() {
                let kept: Vec<(u32, i8)> = col
                    .entries()
                    .iter()
                    .copied()
                    .filter(|_| !rng.bernoulli(drop))
                    .collect();
                m.push(LfColumn::new(kept));
            }
            m
        };
        let (seed_fit, _) = model.fit_em(&perturbed, [0.5, 0.5], None);
        let (warm_cross, _) =
            model.fit_em(&matrix, [0.5, 0.5], Some(seed_fit.lf_accuracies()));

        // The Aitken-accelerated iteration (the default) and the plain
        // fixed-point iteration must land on the same parameters.
        let plain_model = GenerativeModel { accel: false, ..model.clone() };
        let (plain, _) = plain_model.fit_em(&matrix, [0.5, 0.5], None);
        for (a, p) in cold.lf_accuracies().iter().zip(plain.lf_accuracies()) {
            prop_assert!(
                (a - p).abs() < 1e-3,
                "accelerated {} vs plain {} diverged", a, p
            );
        }

        for (j, &c) in cold.lf_accuracies().iter().enumerate() {
            let a = warm_same.lf_accuracies()[j];
            let b = warm_cross.lf_accuracies()[j];
            prop_assert!(
                (a - c).abs() < 1e-3,
                "LF {}: same-matrix warm {} vs cold {}", j, a, c
            );
            prop_assert!(
                (b - c).abs() < 1e-3,
                "LF {}: cross-matrix warm {} vs cold {}", j, b, c
            );
        }

        // The posteriors the downstream pipeline consumes agree too.
        let p_cold = cold.predict(&matrix);
        let p_warm = warm_cross.predict(&matrix);
        for i in 0..matrix.n_examples() {
            prop_assert!(
                (p_cold.p_pos(i) - p_warm.p_pos(i)).abs() < 1e-3,
                "posterior diverged at example {}", i
            );
        }
    }
}

/// The dirty-set cache must also track a real learning loop (not just
/// synthetic perturbations): one session drives selection + learning for
/// 10 rounds while every round cross-checks the cache against a cold
/// rescore (within the fp-drift tolerance of the delta rounds).
#[test]
fn dirty_set_tracks_real_session_traffic() {
    let ds = toy_text(3);
    for seed in [5u64, 17] {
        let config = IdpConfig { n_iterations: 10, eval_every: 5, seed, ..Default::default() };
        let mut session = Session::new(&ds, config);
        let mut selector = SeuSelector::new();
        let mut user = nemo::core::oracle::SimulatedUser::default();
        let mut pipeline = nemo::core::pipeline::StandardPipeline;
        let mut checker = SeuSelector::new();
        for round in 0..10 {
            session.step(&mut selector, &mut user, &mut pipeline);
            let view = session.view();
            let cache = view.aggs.expect("session views carry aggregates");
            let all: Vec<usize> = (0..ds.train.n()).collect();
            let cold = SeuSelector::new().scores(&view, cache.aggs(), &all);
            let cached = checker.scores_cached(&view).expect("aggregates present");
            for (x, (a, b)) in cached.iter().zip(&cold).enumerate() {
                if a.is_finite() || b.is_finite() {
                    assert!(
                        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                        "seed {seed} round {round} x {x}: {a} vs {b}"
                    );
                } else {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} round {round} x {x}");
                }
            }
        }
        let stats = checker.dirty_stats();
        assert!(stats.rounds == 10, "seed {seed}: cache skipped rounds ({stats:?})");
    }
}

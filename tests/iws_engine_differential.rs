//! Differential tests for the `SelectionStrategy` switch: the IWS
//! selection engine (`SelectionStrategy::Iws`) must be deterministic and
//! resumable exactly like the reference SEU engine
//! (`SelectionStrategy::Seu`).
//!
//! The engine's contract (`nemo_core::engines`): acquisition draws come
//! from the session's checkpointed RNG and the bootstrap committee is a
//! pure function of the config seed and the answer log, so
//!
//! - two runs with one seed are bit-identical under any `NEMO_THREADS`
//!   (the CI serial/multicore legs re-run this suite under 1 and 4);
//! - a run checkpointed and restored at any round boundary — through the
//!   in-memory struct or the `nemo-persist` byte codec — retraces the
//!   uninterrupted run bit-for-bit;
//! - pooled sessions under `SessionPool` eviction churn retrace their
//!   standalone runs bit-for-bit, including through a real file store.

use std::sync::Arc;

use nemo::core::pool::{PoolConfig, RoundJob, SessionPool};
use nemo::core::{
    EngineState, IdpConfig, NemoSystem, SelectionStrategy, SharedArtifacts, SimulatedUser,
};
use nemo::data::catalog::toy_text;
use nemo::persist::{session_from_bytes, session_to_bytes, FileCheckpointStore};
use proptest::prelude::*;

/// Everything an IWS run observably produces.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Anchor example reserved each round (`None` = family exhausted).
    selections: Vec<Option<usize>>,
    /// Accepted-candidate count after each round.
    accepted: Vec<usize>,
    /// Final train-posterior bits.
    posterior_bits: Vec<u64>,
    /// Final test score bits.
    test_bits: u64,
}

fn iws_cfg(rounds: usize, seed: u64) -> IdpConfig {
    IdpConfig {
        selection: SelectionStrategy::Iws,
        n_iterations: rounds.max(2),
        eval_every: 2,
        seed,
        ..Default::default()
    }
}

fn user() -> SimulatedUser {
    // Permissive enough that the toy family yields accepts and rejects.
    SimulatedUser::with_threshold(0.55)
}

/// The reference: one uninterrupted `NemoSystem` run.
fn standalone_trace(arts: &SharedArtifacts, cfg: &IdpConfig, rounds: usize) -> Trace {
    let mut nemo = NemoSystem::new(arts.dataset(), cfg.clone());
    let mut u = user();
    let mut selections = Vec::new();
    let mut accepted = Vec::new();
    for _ in 0..rounds {
        let rec = nemo.step_with_user(&mut u).expect("standalone loop resolves reservations");
        selections.push(rec.selected);
        accepted.push(nemo.lineage().len());
    }
    Trace {
        selections,
        accepted,
        posterior_bits: nemo
            .outputs()
            .train_posterior
            .p_pos_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
        test_bits: nemo.test_score().to_bits(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint at any round boundary — optionally bounced through the
    /// persist byte codec — and the resumed run retraces the original.
    #[test]
    fn restore_mid_stream_is_bit_identical(
        seed in 0u64..200,
        rounds in 4usize..=7,
        cut in 1usize..=3,
        through_bytes in proptest::bool::ANY,
    ) {
        let arts = SharedArtifacts::new(toy_text(2));
        let cfg = iws_cfg(rounds, 3000 + seed);
        let want = standalone_trace(&arts, &cfg, rounds);

        let mut nemo = NemoSystem::new(arts.dataset(), cfg.clone());
        let mut u = user();
        for _ in 0..cut.min(rounds) {
            nemo.step_with_user(&mut u).expect("pre-cut rounds run");
        }
        let ckpt = if through_bytes {
            session_from_bytes(&session_to_bytes(&nemo.checkpoint())).expect("codec roundtrip")
        } else {
            nemo.checkpoint()
        };
        prop_assert!(matches!(ckpt.engine, EngineState::IwsV1 { .. }));

        let mut resumed = NemoSystem::restore(arts.dataset(), &ckpt).expect("restore");
        let mut fresh = user();
        let mut selections = Vec::new();
        let mut accepted = Vec::new();
        for _ in 0..cut.min(rounds) {
            // The resumed trace reuses the prefix the original produced.
            selections.push(want.selections[selections.len()]);
            accepted.push(want.accepted[accepted.len()]);
        }
        for _ in cut.min(rounds)..rounds {
            let rec = resumed.step_with_user(&mut fresh).expect("resumed rounds run");
            selections.push(rec.selected);
            accepted.push(resumed.lineage().len());
        }
        let got = Trace {
            selections,
            accepted,
            posterior_bits: resumed
                .outputs()
                .train_posterior
                .p_pos_slice()
                .iter()
                .map(|p| p.to_bits())
                .collect(),
            test_bits: resumed.test_score().to_bits(),
        };
        prop_assert_eq!(&got, &want, "resume diverged (seed {} cut {})", seed, cut);
    }

    /// Pooled IWS sessions under eviction churn and pinned worker counts
    /// {1, 4} retrace their standalone runs bit-for-bit.
    #[test]
    fn pooled_iws_rounds_are_bit_identical_to_isolated_runs(
        seed in 0u64..100,
        k in 2usize..=3,
        rounds in 3usize..=4,
        max_resident in 1usize..=2,
        wide in proptest::bool::ANY,
    ) {
        let workers = if wide { 4usize } else { 1 };
        let arts = Arc::new(SharedArtifacts::new(toy_text(2)));
        let cfgs: Vec<IdpConfig> =
            (0..k as u64).map(|j| iws_cfg(rounds, 5000 + seed * 13 + j)).collect();
        let pool_config =
            PoolConfig { max_resident, workers: Some(workers), ..Default::default() };
        let mut pool = SessionPool::new(&arts, pool_config);
        let ids: Vec<_> = cfgs.iter().map(|c| pool.admit(c.clone()).expect("admit")).collect();
        let mut users: Vec<SimulatedUser> = (0..k).map(|_| user()).collect();
        let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); k];

        for round in 0..rounds {
            // Rotate the visit order so neighbors and LRU pressure vary.
            let order: Vec<usize> = (0..k).map(|j| (j + round) % k).collect();
            let mut handles: Vec<(usize, &mut SimulatedUser)> =
                users.iter_mut().enumerate().collect();
            handles.sort_by_key(|(j, _)| order.iter().position(|o| o == j).unwrap());
            let mut jobs: Vec<RoundJob<'_>> =
                handles.into_iter().map(|(j, u)| RoundJob::new(ids[j], u)).collect();
            let outcomes = pool.run_rounds(&mut jobs).expect("batch runs");
            for (pos, outcome) in outcomes.iter().enumerate() {
                selections[order[pos]].push(outcome.record.selected);
            }
        }
        if max_resident < k {
            prop_assert!(pool.stats().evictions > 0, "undersized pool must evict");
        }
        for (j, cfg) in cfgs.iter().enumerate() {
            let want = standalone_trace(&arts, cfg, rounds);
            prop_assert_eq!(&selections[j], &want.selections, "session {} diverged", j);
            let got: Vec<u64> = pool
                .with_session(ids[j], |nemo| {
                    nemo.outputs()
                        .train_posterior
                        .p_pos_slice()
                        .iter()
                        .map(|p| p.to_bits())
                        .collect()
                })
                .expect("session readable");
            prop_assert_eq!(&got, &want.posterior_bits, "session {} posterior diverged", j);
        }
    }
}

/// Same seed, two runs: bit-identical. The CI serial/multicore legs run
/// this under `NEMO_THREADS` 1 and 4, pinning the committee's parallel
/// member fits to one result.
#[test]
fn ambient_thread_count_does_not_change_iws_traces() {
    let arts = SharedArtifacts::new(toy_text(5));
    let cfg = iws_cfg(6, 42);
    assert_eq!(standalone_trace(&arts, &cfg, 6), standalone_trace(&arts, &cfg, 6));
}

/// Pooled IWS sessions bounced through a real `nemo-persist` file store
/// mid-stream (explicit evictions every round) still retrace their
/// standalone runs — the ENGINE checkpoint section round-trips through
/// disk.
#[test]
fn file_store_evict_restore_mid_stream_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("nemo-iws-difftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let arts = Arc::new(SharedArtifacts::new(toy_text(3)));
    let cfgs: Vec<IdpConfig> = (0..3u64).map(|j| iws_cfg(5, 7700 + j)).collect();
    let rounds = 5;

    let pool_config = PoolConfig { max_resident: 2, workers: Some(2), ..Default::default() };
    let store = Box::new(FileCheckpointStore::new(&dir));
    let mut pool = SessionPool::with_store(&arts, pool_config, store);
    let ids: Vec<_> = cfgs.iter().map(|c| pool.admit(c.clone()).unwrap()).collect();
    let mut users: Vec<SimulatedUser> = (0..3).map(|_| user()).collect();
    let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); 3];

    for round in 0..rounds {
        for (j, &id) in ids.iter().enumerate() {
            let rec = pool.run_round(id, &mut users[j]).unwrap();
            selections[j].push(rec.selected);
        }
        let victim = ids[round % ids.len()];
        pool.evict(victim).unwrap();
        assert!(!pool.is_resident(victim));
    }
    assert!(pool.stats().restores > 0);

    for (j, cfg) in cfgs.iter().enumerate() {
        let want = standalone_trace(&arts, cfg, rounds);
        assert_eq!(selections[j], want.selections, "session {j} selections diverged");
        let got_test = pool.with_session(ids[j], |nemo| nemo.test_score().to_bits()).unwrap();
        assert_eq!(got_test, want.test_bits, "session {j} test score diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The switch's reference path stays the default: `SelectionStrategy::Seu`
/// is what an unconfigured session runs, and the two strategies genuinely
/// differ in behavior on the same seed.
#[test]
fn seu_is_the_reference_and_iws_actually_diverges_from_it() {
    let arts = SharedArtifacts::new(toy_text(2));
    assert_eq!(IdpConfig::default().selection, SelectionStrategy::Seu);

    let seu_cfg = IdpConfig { n_iterations: 6, eval_every: 2, seed: 4, ..Default::default() };
    let mut seu = NemoSystem::new(arts.dataset(), seu_cfg);
    let mut iws = NemoSystem::new(arts.dataset(), iws_cfg(6, 4));
    let mut u1 = user();
    let mut u2 = user();
    let a: Vec<_> = (0..6).map(|_| seu.step_with_user(&mut u1).unwrap().selected).collect();
    let b: Vec<_> = (0..6).map(|_| iws.step_with_user(&mut u2).unwrap().selected).collect();
    assert_ne!(a, b, "the two engines must not be the same strategy in disguise");
}

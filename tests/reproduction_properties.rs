//! Integration tests for the statistical properties the reproduction
//! depends on — the planted structure of the generators (paper Figures
//! 2–3) and the qualitative behaviour of the core components on it.

use nemo::core::config::ContextualizerConfig;
use nemo::core::contextualizer::Contextualizer;
use nemo::core::oracle::SimulatedUser;
use nemo::data::catalog::{self, toy_text};
use nemo::data::{DatasetName, Profile};
use nemo::lf::{Label, LabelMatrix, LfColumn, Lineage};
use nemo::sparse::{DetRng, Distance};

/// Collect `n` simulated-user LFs with lineage from random dev points.
fn collect_lfs(ds: &nemo::data::Dataset, n: usize, seed: u64) -> (Lineage, LabelMatrix) {
    let user = SimulatedUser::default();
    let mut rng = DetRng::new(seed);
    let mut lineage = Lineage::new();
    let mut matrix = LabelMatrix::new(ds.train.n());
    let mut guard = 0;
    while lineage.len() < n && guard < 50 * n {
        guard += 1;
        let x = rng.index(ds.train.n());
        let cands = user.candidates(x, ds);
        // Mirror `SimulatedUser::pick`: threshold-passing lexicon keywords
        // first (the LF family real users write), any passing primitive
        // otherwise. Background/shared tokens carry no planted
        // label-accuracy structure, so without this preference the
        // collected LFs would dilute the Figure 2 signal.
        let lex_passing: Vec<_> =
            cands.iter().filter(|&&(lf, a)| a >= 0.5 && ds.in_lexicon(lf.z)).collect();
        let passing: Vec<_> = if lex_passing.is_empty() {
            cands.iter().filter(|&&(_, a)| a >= 0.5).collect()
        } else {
            lex_passing
        };
        if passing.is_empty() {
            continue;
        }
        let (lf, _) = *passing[rng.index(passing.len())];
        lineage.record(lf, x as u32, lineage.len() as u32);
        matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
    }
    (lineage, matrix)
}

#[test]
fn figure2_property_coverage_and_accuracy_decay_with_distance() {
    let ds = catalog::build(DatasetName::Amazon, Profile::Smoke, 77);
    let (lineage, _) = collect_lfs(&ds, 40, 7);
    let n = ds.train.n();
    let (mut cov_near, mut cov_far) = (0.0, 0.0);
    let (mut acc_near_num, mut acc_near_den) = (0.0, 0.0);
    let (mut acc_far_num, mut acc_far_den) = (0.0, 0.0);
    for rec in lineage.tracked() {
        let dists = ds.train.features.point_to_all(Distance::Cosine, rec.dev_example as usize);

        // Coverage locality (Figure 2, left): the near half of the pool
        // (by distance from the dev example) holds most of the coverage.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dists[a].partial_cmp(&dists[b]).expect("finite"));
        let (near, far) = order.split_at(n / 2);
        let cov_of = |seg: &[usize]| -> f64 {
            seg.iter().filter(|&&i| ds.train.corpus.contains(i, rec.lf.z)).count() as f64
                / seg.len() as f64
        };
        cov_near += cov_of(near);
        cov_far += cov_of(far);

        // Accuracy locality (Figure 2, right): *within* the LF's
        // coverage, the nearest covered half is more accurate than the
        // farthest — the structure the percentile contextualizer exploits.
        // (Splitting the whole pool in half instead leaves almost no
        // covered examples in the far half — sharing the rare LF keyword
        // already makes a document near under TF-IDF cosine — so the far
        // accuracy estimate would be noise.)
        let mut covered: Vec<usize> =
            (0..n).filter(|&i| ds.train.corpus.contains(i, rec.lf.z)).collect();
        covered.sort_by(|&a, &b| dists[a].partial_cmp(&dists[b]).expect("finite"));
        let (cov_near_half, cov_far_half) = covered.split_at(covered.len() / 2);
        let correct_of =
            |seg: &[usize]| seg.iter().filter(|&&i| ds.train.labels[i] == rec.lf.y).count() as f64;
        acc_near_num += correct_of(cov_near_half);
        acc_near_den += cov_near_half.len() as f64;
        acc_far_num += correct_of(cov_far_half);
        acc_far_den += cov_far_half.len() as f64;
    }
    assert!(
        cov_near > cov_far * 1.3,
        "coverage must concentrate near the dev data: near {cov_near:.3} vs far {cov_far:.3}"
    );
    let acc_near = acc_near_num / acc_near_den.max(1.0);
    let acc_far = acc_far_num / acc_far_den.max(1.0);
    assert!(
        acc_near > acc_far + 0.03,
        "accuracy must decay with distance: near {acc_near:.3} vs far {acc_far:.3}"
    );
}

#[test]
fn contextualizer_raises_vote_accuracy_on_catalog_data() {
    let ds = catalog::build(DatasetName::Amazon, Profile::Smoke, 78);
    let (lineage, matrix) = collect_lfs(&ds, 25, 9);
    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(&lineage, &ds);
    let vote_acc = |m: &LabelMatrix| -> f64 {
        let (mut c, mut t) = (0usize, 0usize);
        for col in m.columns() {
            for &(i, v) in col.entries() {
                t += 1;
                if Label::from_sign(v) == Some(ds.train.labels[i as usize]) {
                    c += 1;
                }
            }
        }
        c as f64 / t.max(1) as f64
    };
    let raw = vote_acc(&matrix);
    let refined = vote_acc(&ctx.refined_train_matrix(&matrix, 25.0));
    assert!(
        refined >= raw,
        "refinement must not lower vote accuracy: refined {refined:.3} vs raw {raw:.3}"
    );
}

#[test]
fn refinement_radius_transfers_to_validation_split() {
    let ds = toy_text(31);
    let (lineage, _) = collect_lfs(&ds, 10, 3);
    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(&lineage, &ds);
    // At p=100 the validation matrix equals the raw application of LFs
    // to the validation corpus; at p=25 it is a subset.
    let full = ctx.refined_valid_matrix(100.0, ds.valid.n());
    let tight = ctx.refined_valid_matrix(25.0, ds.valid.n());
    for j in 0..lineage.len() {
        assert!(tight.column(j).coverage() <= full.column(j).coverage());
    }
}

#[test]
fn generated_catalog_matches_table1_scaling() {
    for name in DatasetName::ALL {
        let ds = catalog::build(name, Profile::Smoke, 3);
        let (paper_train, paper_valid, paper_test) = name.paper_sizes();
        // Ratios hold up to the smoke floor.
        assert!(ds.train.n() <= paper_train);
        assert!(ds.valid.n() <= paper_valid.max(100));
        assert!(ds.test.n() <= paper_test.max(100));
        ds.validate();
    }
}

#[test]
fn sms_is_imbalanced_and_spam_lfs_exist() {
    let ds = catalog::build(DatasetName::Sms, Profile::Smoke, 3);
    assert!(ds.train.pos_frac() < 0.25);
    // The simulated user can produce spam-polarity LFs from spam
    // examples (not necessarily from every one — some spam messages
    // contain no sufficiently precise keyword).
    let user = SimulatedUser::default();
    let usable = (0..ds.train.n())
        .filter(|&i| ds.train.labels[i] == Label::Pos)
        .take(20)
        .any(|i| user.candidates(i, &ds).iter().any(|&(lf, acc)| lf.y == Label::Pos && acc > 0.5));
    assert!(usable, "some spam example should yield a usable spam LF");
}

#[test]
fn oracle_never_returns_out_of_domain_primitives() {
    let ds = catalog::build(DatasetName::Yelp, Profile::Smoke, 4);
    let mut user = SimulatedUser::default();
    let mut rng = DetRng::new(6);
    for x in (0..ds.train.n()).step_by(37) {
        if let Some(lf) = nemo::core::oracle::User::provide_lf(&mut user, x, &ds, &mut rng) {
            assert!((lf.z as usize) < ds.n_primitives);
            assert!(ds.train.corpus.contains(x, lf.z));
        }
    }
}

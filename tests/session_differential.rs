//! Differential tests for the `Session` engine's two fast paths:
//!
//! 1. **Incremental `PrimAgg` maintenance** — after every learning stage
//!    the session replays only the dirty examples' contribution deltas
//!    into the cached aggregates. Integer fields must match a full
//!    one-pass rebuild (`SeuSelector::primitive_aggregates`) exactly and
//!    the in-place float sums within drift tolerance; selections driven
//!    by the cache must be *identical* to selections recomputed from
//!    scratch.
//! 2. **Parallel SEU scoring** — chunked parallel scoring must be
//!    bit-identical to a serial scan, and both must match the retained
//!    naive per-example reference (`expected_utility_naive`) within fp
//!    tolerance, across every `UserModelKind × UtilityKind` combination.
//!
//! Both properties are checked over ≥ 3 seeds while a real interactive
//! loop (SEU selection + simulated user) mutates the session, so the
//! cache sees the same dirty patterns production runs produce.

use nemo::core::config::IdpConfig;
use nemo::core::idp::{SelectionView, Selector};
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::{ContextualizedPipeline, LearningPipeline, StandardPipeline};
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::core::user_model::UserModelKind;
use nemo::core::utility::UtilityKind;
use nemo::data::catalog::toy_text;
use nemo::sparse::parallel::par_map_min;
use nemo::sparse::DetRng;

const SEEDS: [u64; 3] = [11, 22, 33];

const USER_MODELS: [UserModelKind; 3] =
    [UserModelKind::AccuracyWeighted, UserModelKind::Uniform, UserModelKind::MultiLfIndicator];

const UTILITIES: [UtilityKind; 3] =
    [UtilityKind::Full, UtilityKind::NoInformativeness, UtilityKind::NoCorrectness];

fn drive<'a>(
    session: &mut Session<'a>,
    pipeline: &mut dyn LearningPipeline,
    n_steps: usize,
    mut inspect: impl FnMut(&Session<'a>),
) {
    let mut selector = SeuSelector::new();
    let mut user = SimulatedUser::default();
    for _ in 0..n_steps {
        session.step(&mut selector, &mut user, pipeline);
        inspect(session);
    }
}

/// Assert cached aggregates track a from-scratch rebuild: integer fields
/// exactly, in-place float sums within drift tolerance.
fn assert_aggs_track(session: &Session<'_>, seed: u64) {
    let rebuilt = SeuSelector::primitive_aggregates(&session.view());
    for (z, (cached, fresh)) in session.aggregates().aggs().iter().zip(&rebuilt).enumerate() {
        assert_eq!(cached.df, fresh.df, "seed {seed} z {z}: df diverged");
        assert_eq!(cached.n_pos, fresh.n_pos, "seed {seed} z {z}: n_pos diverged");
        for (a, b, field) in [
            (cached.s_psi, fresh.s_psi, "s_psi"),
            (cached.s_yhat, fresh.s_yhat, "s_yhat"),
            (cached.s_psi_yhat, fresh.s_psi_yhat, "s_psi_yhat"),
        ] {
            assert!(
                (a - b).abs() < 1e-9,
                "seed {seed} z {z}: {field} drifted ({a} vs {b}) at iteration {}",
                session.iteration()
            );
        }
    }
}

#[test]
fn incremental_aggregates_track_rebuild() {
    let ds = toy_text(3);
    for seed in SEEDS {
        let config = IdpConfig { n_iterations: 10, eval_every: 5, seed, ..Default::default() };
        let mut session = Session::new(&ds, config);
        let mut pipeline = StandardPipeline;
        let mut checked = 0;
        drive(&mut session, &mut pipeline, 10, |s| {
            assert_aggs_track(s, seed);
            checked += 1;
        });
        assert_eq!(checked, 10);
        let (rebuilds, deltas) = session.aggregates().sync_counts();
        assert!(
            deltas > 0,
            "seed {seed}: the incremental path was never exercised \
             ({rebuilds} rebuilds, {deltas} delta syncs)"
        );
    }
}

#[test]
fn incremental_aggregates_hold_under_contextualized_pipeline() {
    // The contextualized pipeline rewrites the posterior from refined
    // votes each round — a harsher dirty pattern than standard learning.
    let ds = toy_text(3);
    for seed in SEEDS {
        let config = IdpConfig { n_iterations: 8, eval_every: 4, seed, ..Default::default() };
        let mut session = Session::new(&ds, config);
        let mut pipeline = ContextualizedPipeline::default();
        drive(&mut session, &mut pipeline, 8, |s| assert_aggs_track(s, seed));
    }
}

#[test]
fn parallel_scores_bit_identical_to_serial_and_match_naive() {
    let ds = toy_text(3);
    for seed in SEEDS {
        let config = IdpConfig { n_iterations: 6, eval_every: 3, seed, ..Default::default() };
        let mut session = Session::new(&ds, config);
        let mut pipeline = StandardPipeline;
        drive(&mut session, &mut pipeline, 6, |_| {});

        let view = session.view();
        let aggs = view.aggs.expect("session views carry cached aggregates").aggs();
        let avail = view.available();
        for um in USER_MODELS {
            for ut in UTILITIES {
                let sel = SeuSelector::with(um, ut);
                let table = sel.score_table(&view, aggs);
                // Force the chunked parallel path regardless of pool size.
                let parallel: Vec<f64> =
                    par_map_min(&avail, 1, |_, &x| sel.expected_utility_tabled(&view, &table, x));
                let serial: Vec<f64> =
                    avail.iter().map(|&x| sel.expected_utility_tabled(&view, &table, x)).collect();
                let via_scores = sel.scores(&view, aggs, &avail);
                for i in 0..avail.len() {
                    assert_eq!(
                        parallel[i].to_bits(),
                        serial[i].to_bits(),
                        "seed {seed} um {um:?} ut {ut:?}: parallel/serial diverge at {}",
                        avail[i]
                    );
                    assert_eq!(parallel[i].to_bits(), via_scores[i].to_bits());
                    let naive = sel.expected_utility_naive(&view, avail[i]);
                    if parallel[i].is_finite() || naive.is_finite() {
                        assert!(
                            (parallel[i] - naive).abs() < 1e-9,
                            "seed {seed} um {um:?} ut {ut:?} x {}: fast {} vs naive {naive}",
                            avail[i],
                            parallel[i]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn cached_and_rebuilt_aggregates_select_identically() {
    // The acceptance property: selections driven by the incremental cache
    // are identical to selections recomputed from scratch.
    let ds = toy_text(3);
    for seed in SEEDS {
        let config = IdpConfig { n_iterations: 8, eval_every: 4, seed, ..Default::default() };
        let mut session = Session::new(&ds, config);
        let mut pipeline = StandardPipeline;
        drive(&mut session, &mut pipeline, 8, |s| {
            let cached_view = s.view();
            let uncached_view = SelectionView { aggs: None, ..s.view() };
            for um in USER_MODELS {
                for ut in UTILITIES {
                    let mut sel = SeuSelector::with(um, ut);
                    let mut rng_a = DetRng::new(seed ^ 0xA5);
                    let mut rng_b = DetRng::new(seed ^ 0xA5);
                    assert_eq!(
                        sel.select(&cached_view, &mut rng_a),
                        sel.select(&uncached_view, &mut rng_b),
                        "seed {seed} um {um:?} ut {ut:?}: cached selection diverged"
                    );
                }
            }
        });
    }
}

//! Disconnect/resume differential tests: a session checkpointed to a real
//! file, loaded back, and restored must behave **bit-identically** to one
//! that was never interrupted — same selections, same tuned percentiles,
//! same posterior bits, same test score.

use nemo::core::oracle::{SimulatedUser, User};
use nemo::core::{IdpConfig, NemoSystem, RestoreError};
use nemo::data::catalog::{self, toy_text};
use nemo::data::{Dataset, DatasetName, Profile};
use nemo::persist::{load_session, save_session, session_to_bytes};
use nemo::sparse::DetRng;
use proptest::prelude::*;

/// Drive `rounds` interactive iterations through the public API, returning
/// the selected example per round. The user's randomness comes from the
/// caller's `rng` so both legs of a differential can replay it exactly.
fn drive(
    nemo: &mut NemoSystem<'_>,
    ds: &Dataset,
    user: &SimulatedUser,
    rng: &mut DetRng,
    rounds: usize,
) -> Vec<usize> {
    let mut user = user.clone();
    (0..rounds)
        .map(|_| {
            let x = nemo
                .suggest_example()
                .expect("protocol driven in order")
                .expect("pool not exhausted in short runs");
            match user.provide_lf(x, ds, rng) {
                Some(lf) => nemo.submit_lf(lf).expect("oracle LFs are in-domain"),
                None => nemo.skip().expect("suggestion pending"),
            }
            x
        })
        .collect()
}

/// Bit-level fingerprint of everything the models produced: train
/// posterior bits, train probs bits, valid/test prediction signs, the
/// tuned percentile's bits, and the test score's bits.
type OutputBits = (Vec<u64>, Vec<u64>, Vec<i8>, Vec<i8>, Option<u64>, u64);

fn output_bits(nemo: &NemoSystem<'_>) -> OutputBits {
    let o = nemo.outputs();
    (
        o.train_posterior.p_pos_slice().iter().map(|p| p.to_bits()).collect(),
        o.train_probs.iter().map(|p| p.to_bits()).collect(),
        o.valid_pred.iter().map(|l| l.sign()).collect(),
        o.test_pred.iter().map(|l| l.sign()).collect(),
        o.chosen_p.map(f64::to_bits),
        nemo.test_score().to_bits(),
    )
}

/// One interrupted-vs-uninterrupted differential: run `total` rounds
/// straight; run `cut` rounds, checkpoint through a real file, restore,
/// finish the remaining rounds. Everything observable must match bitwise.
fn assert_resume_identical(ds: &Dataset, config: IdpConfig, total: usize, cut: usize) {
    let user = SimulatedUser::default();
    let user_seed = config.seed ^ 0x00D1_F00D;

    let mut reference = NemoSystem::new(ds, config.clone());
    let mut ref_rng = DetRng::new(user_seed);
    let ref_selections = drive(&mut reference, ds, &user, &mut ref_rng, total);

    let mut interrupted = NemoSystem::new(ds, config);
    let mut rng = DetRng::new(user_seed);
    let mut selections = drive(&mut interrupted, ds, &user, &mut rng, cut);

    // Checkpoint through an actual file (crash-safe write + full load
    // path), then drop the live session — the restored one stands alone.
    let dir = std::env::temp_dir().join(format!("nemo-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("resume-{cut}.ckpt"));
    save_session(&path, &interrupted.checkpoint()).unwrap();
    let (rng_state, gauss) = rng.raw_state();
    drop(interrupted);

    let ckpt = load_session(&path).unwrap();
    let mut resumed = NemoSystem::restore(ds, &ckpt).expect("checkpoint restores");
    let mut rng = DetRng::from_raw_state(rng_state, gauss).unwrap();
    selections.extend(drive(&mut resumed, ds, &user, &mut rng, total - cut));

    assert_eq!(selections, ref_selections, "selection sequence diverged after resume");
    assert_eq!(output_bits(&resumed), output_bits(&reference), "model outputs diverged bitwise");
    assert_eq!(resumed.lineage().tracked(), reference.lineage().tracked());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_session_matches_uninterrupted_run() {
    let ds = toy_text(33);
    let config = IdpConfig { n_iterations: 8, eval_every: 4, seed: 5, ..Default::default() };
    assert_resume_identical(&ds, config, 8, 4);
}

#[test]
fn resume_after_first_round_and_before_last_round() {
    // The boundary cuts: right after the first learning round, and with a
    // single round left.
    let ds = toy_text(12);
    for cut in [1, 5] {
        let config = IdpConfig { n_iterations: 6, eval_every: 6, seed: 3, ..Default::default() };
        assert_resume_identical(&ds, config, 6, cut);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn resume_is_bit_identical_across_seeds_and_cut_points(seed in 0u64..1_000, cut in 1usize..5) {
        let ds = toy_text(77);
        let config = IdpConfig { n_iterations: 5, eval_every: 5, seed, ..Default::default() };
        assert_resume_identical(&ds, config, 5, cut);
    }
}

#[test]
fn checkpoint_file_reloads_as_written() {
    let ds = toy_text(4);
    let config = IdpConfig { n_iterations: 3, eval_every: 3, seed: 1, ..Default::default() };
    let mut nemo = NemoSystem::new(&ds, config);
    let user = SimulatedUser::default();
    let mut rng = DetRng::new(11);
    drive(&mut nemo, &ds, &user, &mut rng, 3);

    let dir = std::env::temp_dir().join(format!("nemo-ckpt-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.ckpt");
    let ckpt = nemo.checkpoint();
    save_session(&path, &ckpt).unwrap();
    let loaded = load_session(&path).unwrap();
    assert_eq!(session_to_bytes(&loaded), session_to_bytes(&ckpt));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_restores_only_against_a_matching_dataset() {
    let ds = toy_text(8);
    let config = IdpConfig { n_iterations: 2, eval_every: 2, seed: 2, ..Default::default() };
    let mut nemo = NemoSystem::new(&ds, config);
    let user = SimulatedUser::default();
    let mut rng = DetRng::new(7);
    drive(&mut nemo, &ds, &user, &mut rng, 2);
    let ckpt = nemo.checkpoint();

    // A structurally different dataset: the restore validation must reject
    // the checkpoint with a typed error instead of building a broken
    // session.
    let other = catalog::build(DatasetName::Youtube, Profile::Smoke, 5);
    assert!(matches!(
        NemoSystem::restore(&other, &ckpt),
        Err(RestoreError::LengthMismatch { .. } | RestoreError::LineageOutOfDomain { .. })
    ));
}

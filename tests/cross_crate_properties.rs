//! Cross-crate property-based tests: invariants that span the substrate
//! boundaries (generator → features → LFs → label model → end model),
//! checked with proptest over randomized configurations and seeds.

use nemo::core::oracle::SimulatedUser;
use nemo::data::catalog::toy_text;
use nemo::data::mixture::{MixtureConfig, MixtureModel};
use nemo::labelmodel::{GenerativeModel, LabelModel, MajorityVote, TripletModel};
use nemo::lf::{Label, LabelMatrix, LfColumn, PrimitiveLf};
use nemo::sparse::DetRng;
use proptest::prelude::*;

/// Random label matrix: n examples, m LFs with random accuracy/coverage.
fn random_matrix(n: usize, m: usize, seed: u64) -> (LabelMatrix, Vec<Label>) {
    let mut rng = DetRng::new(seed);
    let labels: Vec<Label> = (0..n).map(|_| Label::from_bool(rng.bernoulli(0.5))).collect();
    let mut matrix = LabelMatrix::new(n);
    for _ in 0..m {
        let acc = rng.uniform_in(0.55, 0.95);
        let cov = rng.uniform_in(0.05, 0.5);
        let mut entries = Vec::new();
        for (i, &y) in labels.iter().enumerate() {
            if rng.bernoulli(cov) {
                let vote = if rng.bernoulli(acc) { y.sign() } else { y.flip().sign() };
                entries.push((i as u32, vote));
            }
        }
        matrix.push(LfColumn::new(entries));
    }
    (matrix, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every label model produces normalized posteriors with accuracies
    /// inside the clamp range, on arbitrary random matrices.
    #[test]
    fn label_models_produce_valid_posteriors(seed in 0u64..500, m in 0usize..8) {
        let (matrix, _) = random_matrix(200, m, seed);
        let models: Vec<Box<dyn LabelModel>> = vec![
            Box::new(MajorityVote::default()),
            Box::new(TripletModel::default()),
            Box::new(GenerativeModel::default()),
        ];
        for model in models {
            let fitted = model.fit(&matrix, [0.5, 0.5]);
            prop_assert_eq!(fitted.lf_accuracies().len(), m);
            for &a in fitted.lf_accuracies() {
                prop_assert!((0.05..=0.95).contains(&a), "{} acc {a}", model.name());
            }
            let post = fitted.predict(&matrix);
            prop_assert_eq!(post.len(), 200);
            for i in 0..200 {
                let [pn, pp] = post.probs(i);
                prop_assert!((pn + pp - 1.0).abs() < 1e-9);
                prop_assert!((0.0..=1.0).contains(&pp));
            }
        }
    }

    /// The mixture generator respects its configured class prior and
    /// produces tokens inside its vocabulary for arbitrary shapes.
    #[test]
    fn mixture_respects_domain(
        seed in 0u64..200,
        n_clusters in 1usize..5,
        n_ind in 4usize..24,
    ) {
        let cfg = MixtureConfig {
            n_clusters,
            n_shared: 30,
            n_background_per_cluster: 20,
            n_indicators: n_ind,
            ..MixtureConfig::default()
        };
        let vocab = cfg.vocab_size();
        let mut rng = DetRng::new(seed);
        let model = MixtureModel::new(cfg, &mut rng);
        for doc in model.sample_docs(50, &mut rng) {
            prop_assert!((doc.cluster as usize) < n_clusters);
            for &t in &doc.tokens {
                prop_assert!((t as usize) < vocab);
            }
        }
    }

    /// Oracle LFs always pass the configured threshold when any candidate
    /// does (the fallback only engages when nothing passes).
    #[test]
    fn oracle_respects_threshold_when_possible(seed in 0u64..100, x in 0usize..800) {
        let ds = toy_text(5);
        let x = x % ds.train.n();
        let threshold = 0.6;
        let mut user = SimulatedUser::with_threshold(threshold);
        let mut rng = DetRng::new(seed);
        let candidates = user.candidates(x, &ds);
        let any_passing = candidates.iter().any(|&(_, a)| a >= threshold);
        if let Some(lf) = nemo::core::oracle::User::provide_lf(&mut user, x, &ds, &mut rng) {
            let acc = lf
                .accuracy_against(&ds.train.corpus, &ds.train.labels)
                .expect("returned LF covers something");
            if any_passing {
                prop_assert!(acc >= threshold, "returned {acc} below threshold with passing candidates");
            }
        }
    }

    /// Applying then refining LFs never invents votes: the contextualized
    /// matrix is entrywise a sub-matrix of the raw one, at any percentile.
    #[test]
    fn refinement_is_entrywise_subset(seed in 0u64..50, p in 0.0f64..100.0) {
        use nemo::core::config::ContextualizerConfig;
        use nemo::core::contextualizer::Contextualizer;
        use nemo::lf::Lineage;
        let ds = toy_text(7);
        let mut rng = DetRng::new(seed);
        let mut lineage = Lineage::new();
        let mut matrix = LabelMatrix::new(ds.train.n());
        for _ in 0..5 {
            let x = rng.index(ds.train.n());
            let prims = ds.train.corpus.primitives_of(x);
            if prims.is_empty() {
                continue;
            }
            let z = prims[rng.index(prims.len())];
            let lf = PrimitiveLf::new(z, ds.train.labels[x]);
            lineage.record(lf, x as u32, lineage.len() as u32);
            matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
        }
        let mut ctx = Contextualizer::new(ContextualizerConfig::default());
        ctx.sync(&lineage, &ds);
        let refined = ctx.refined_train_matrix(&matrix, p);
        for j in 0..matrix.n_lfs() {
            for &(i, v) in refined.column(j).entries() {
                prop_assert_eq!(matrix.column(j).vote(i), v);
            }
        }
    }

    /// End model training is invariant to the order of the index list
    /// (it shuffles internally with its own seed).
    #[test]
    fn end_model_invariant_to_index_order(seed in 0u64..50) {
        use nemo::endmodel::LogisticRegression;
        let ds = toy_text(7);
        let mut rng = DetRng::new(seed);
        let mut idx: Vec<u32> = (0..ds.train.n() as u32).filter(|_| rng.bernoulli(0.3)).collect();
        let targets: Vec<f64> =
            ds.train.labels.iter().map(|&l| if l == Label::Pos { 1.0 } else { 0.0 }).collect();
        let m1 = LogisticRegression::default().fit(ds.train.features.csr(), &targets, Some(&idx), 3);
        idx.reverse();
        let m2 = LogisticRegression::default().fit(ds.train.features.csr(), &targets, Some(&idx), 3);
        // Same seed → same shuffled order regardless of input order is NOT
        // guaranteed; instead check predictive agreement (both models are
        // fit on the same data and must agree on hard labels almost
        // everywhere).
        let p1 = m1.predict_proba(ds.test.features.csr());
        let p2 = m2.predict_proba(ds.test.features.csr());
        let agree = p1
            .iter()
            .zip(&p2)
            .filter(|(a, b)| (**a >= 0.5) == (**b >= 0.5))
            .count();
        prop_assert!(agree as f64 / p1.len() as f64 > 0.9, "agreement {agree}/{}", p1.len());
    }
}

#[test]
fn metal_moment_and_em_agree_on_dense_overlap() {
    // With large overlapping coverage both estimators see the same
    // moments and must roughly agree (cross-validating two independent
    // implementations).
    let (matrix, _) = random_matrix(4000, 5, 99);
    let t = TripletModel::default().fit(&matrix, [0.5, 0.5]);
    let g = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
    for (a, b) in t.lf_accuracies().iter().zip(g.lf_accuracies()) {
        assert!((a - b).abs() < 0.12, "triplet {a:.3} vs em {b:.3}");
    }
}

//! Differential property suite for the copy-on-write `Arc<LfColumn>`
//! matrix storage and the equivalence-class posterior dedup in `tune_p`
//! ([`PosteriorDedup::Class`] vs [`PosteriorDedup::PerPoint`]).
//!
//! The CoW claims are *representation* claims, so the properties compare
//! observable behaviour across construction paths: a matrix assembled
//! from owned columns, one assembled from shared handles of the same
//! contents, and clones of either must be indistinguishable through the
//! whole read API — while mutation through [`LabelMatrix::column_mut`]
//! must break sharing for exactly the edited column and leak into no
//! other holder. The dedup claims are *bitwise* claims: one posterior
//! predict per `(fit, validation matrix)` equivalence class must
//! reproduce the per-grid-point reference's tuned percentile, validation
//! score (to the bit), and refined train matrix over any lineage-growth
//! trajectory, while never predicting more often — and strictly less
//! often once the grid contains duplicated percentiles.

use nemo::core::config::{
    ContextualizerConfig, IdpConfig, LabelModelKind, PosteriorDedup, RefinementCaching,
};
use nemo::core::contextualizer::Contextualizer;
use nemo::core::oracle::SimulatedUser;
use nemo::core::pipeline::ContextualizedPipeline;
use nemo::core::session::Session;
use nemo::core::seu::SeuSelector;
use nemo::data::catalog::toy_text;
use nemo::labelmodel::GenerativeModel;
use nemo::lf::{Label, LabelMatrix, LfColumn, Lineage, PrimitiveLf, Vote};
use nemo::sparse::DetRng;
use proptest::prelude::*;
use std::sync::Arc;

/// Deduplicate raw `(example, sign)` pairs into the sorted-unique entry
/// list [`LfColumn::new`] accepts (first occurrence of an example wins).
fn to_entries(pairs: &[(u32, bool)]) -> Vec<(u32, Vote)> {
    let mut seen = std::collections::BTreeMap::new();
    for &(i, pos) in pairs {
        seen.entry(i).or_insert(pos);
    }
    seen.into_iter().map(|(i, pos)| (i, if pos { 1 } else { -1 })).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Owned pushes, shared pushes of the same contents, and clones are
    /// observably identical matrices.
    #[test]
    fn prop_owned_and_shared_construction_indistinguishable(
        raw_cols in proptest::collection::vec(
            proptest::collection::vec((0u32..24, proptest::bool::ANY), 0..12), 1..8),
    ) {
        let n = 24usize;
        let cols: Vec<Vec<(u32, Vote)>> = raw_cols.iter().map(|c| to_entries(c)).collect();
        let mut owned = LabelMatrix::new(n);
        let mut shared = LabelMatrix::new(n);
        for entries in &cols {
            owned.push(LfColumn::new(entries.clone()));
            shared.push_shared(Arc::new(LfColumn::new(entries.clone())));
        }
        prop_assert_eq!(&owned, &shared);
        prop_assert_eq!(owned.vote_summaries(), shared.vote_summaries());
        prop_assert_eq!(owned.coverage_frac(), shared.coverage_frac());
        for i in 0..n as u32 {
            prop_assert_eq!(owned.row(i), shared.row(i));
        }
        // Construction tokens differ everywhere (distinct constructions),
        // so equality above exercised the content path, not the fast path.
        for j in 0..owned.n_lfs() {
            prop_assert_ne!(owned.column(j).token(), shared.column(j).token());
        }
        // Clones share every buffer and stay equal.
        let snap = owned.clone();
        prop_assert_eq!(snap.shared_columns_with(&owned), owned.n_lfs());
        prop_assert_eq!(&snap, &owned);
    }

    /// Token fast path: two handles of one construction compare equal
    /// without entry scans, and a clone of the matrix keeps tokens.
    #[test]
    fn prop_shared_handles_share_tokens(
        raw in proptest::collection::vec((0u32..24, proptest::bool::ANY), 0..12),
    ) {
        let col = Arc::new(LfColumn::new(to_entries(&raw)));
        let mut a = LabelMatrix::new(24);
        let mut b = LabelMatrix::new(24);
        a.push_shared(Arc::clone(&col));
        b.push_shared(col);
        prop_assert_eq!(a.column(0).token(), b.column(0).token());
        prop_assert!(Arc::ptr_eq(a.shared_column(0), b.shared_column(0)));
        prop_assert_eq!(&a, &b);
    }

    /// Mutation-after-share: editing one column of one holder through the
    /// CoW API must not change any other holder, must unshare exactly the
    /// edited column, and must restamp its token.
    #[test]
    fn prop_mutation_after_share_is_isolated(
        raw_cols in proptest::collection::vec(
            proptest::collection::vec((0u32..24, proptest::bool::ANY), 0..12), 2..8),
        edit_seed in 0u64..1_000_000,
    ) {
        let n = 24usize;
        let mut a = LabelMatrix::new(n);
        for raw in &raw_cols {
            a.push(LfColumn::new(to_entries(raw)));
        }
        let b = a.clone();
        let mut rng = DetRng::new(edit_seed);
        let j = rng.index(a.n_lfs());
        let drop_below = rng.index(n) as u32;
        let before_entries: Vec<(u32, Vote)> = a.column(j).entries().to_vec();
        let before_token = a.column(j).token();
        a.column_mut(j).retain(|i| i >= drop_below);

        // The edited holder sees the filtered column with a fresh token…
        let expect: Vec<(u32, Vote)> =
            before_entries.iter().copied().filter(|&(i, _)| i >= drop_below).collect();
        prop_assert_eq!(a.column(j).entries(), expect.as_slice());
        prop_assert_ne!(a.column(j).token(), before_token);
        // …the other holder keeps the original votes and token…
        prop_assert_eq!(b.column(j).entries(), before_entries.as_slice());
        prop_assert_eq!(b.column(j).token(), before_token);
        prop_assert!(!Arc::ptr_eq(a.shared_column(j), b.shared_column(j)));
        // …and every untouched column stays pointer-shared.
        for k in 0..a.n_lfs() {
            if k != j {
                prop_assert!(Arc::ptr_eq(a.shared_column(k), b.shared_column(k)));
            }
        }
        prop_assert_eq!(a.shared_columns_with(&b), a.n_lfs() - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Class-deduped validation scoring vs the per-grid-point reference
    /// over random lineage-growth trajectories, with occasionally
    /// *duplicated* grid percentiles forcing non-trivial equivalence
    /// classes: tuned percentile, validation score (bitwise), refined
    /// train matrix, and fit dedup must agree every round, and the class
    /// path must save predicts exactly when classes collapse.
    #[test]
    fn prop_class_predict_matches_per_point(
        seed in 0u64..1_000_000,
        rounds in 2usize..6,
        duplicate_grid in proptest::bool::ANY,
    ) {
        let ds = toy_text(2);
        let mut rng = DetRng::new(seed);
        let p_grid = if duplicate_grid {
            // Duplicates refine to identical train AND valid matrices, so
            // each duplicated pair must collapse into one class.
            vec![25.0, 50.0, 50.0, 100.0, 100.0]
        } else {
            vec![25.0, 50.0, 75.0, 100.0]
        };
        let mut class_ctx = Contextualizer::new(ContextualizerConfig {
            p_grid: p_grid.clone(),
            ..Default::default()
        });
        let mut pp_ctx = Contextualizer::new(ContextualizerConfig {
            p_grid: p_grid.clone(),
            posterior_dedup: PosteriorDedup::PerPoint,
            ..Default::default()
        });
        let model = GenerativeModel::default();
        let mut lineage = Lineage::new();
        let mut matrix = LabelMatrix::new(ds.train.n());
        for round in 0..rounds {
            let n_new = if round == 0 { 1 } else { rng.index(3) };
            for _ in 0..n_new {
                let z = rng.index(ds.n_primitives) as u32;
                let lf = PrimitiveLf::new(z, Label::from_bool(rng.bernoulli(0.5)));
                lineage.record(lf, rng.index(ds.train.n()) as u32, round as u32);
                matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
            }
            class_ctx.sync(&lineage, &ds);
            pp_ctx.sync(&lineage, &ds);
            let a = class_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            let b = pp_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            prop_assert_eq!(a.p, b.p, "round {}: tuned percentile", round);
            prop_assert_eq!(
                a.valid_score.to_bits(),
                b.valid_score.to_bits(),
                "round {}: validation score", round
            );
            prop_assert_eq!(&a.train_matrix, &b.train_matrix, "round {}: tuned matrix", round);
            prop_assert_eq!(
                class_ctx.tune_fits(), pp_ctx.tune_fits(),
                "round {}: fit dedup resolved differently", round
            );
        }
        prop_assert_eq!(pp_ctx.tune_predicts(), rounds * p_grid.len());
        prop_assert!(class_ctx.tune_predicts() <= pp_ctx.tune_predicts());
        if duplicate_grid {
            // Each round has at most 3 distinct grid points, so at least
            // 2 predicts per round must have been deduped away.
            prop_assert!(
                class_ctx.tune_predicts() <= rounds * (p_grid.len() - 2),
                "duplicated grid points were not deduped: {} predicts over {} rounds",
                class_ctx.tune_predicts(), rounds
            );
        }
        // CoW accounting invariant of the incremental serve path: every
        // processed (grid point, LF) slot hands out its train and valid
        // columns as shared handles — never a vote memcpy.
        let stats = class_ctx.refine_cache_stats();
        prop_assert_eq!(stats.shared_serves, 2 * (stats.hits + stats.refilters));
    }
}

/// Full-session differential: an interactive `Session` (SEU selection +
/// simulated user + contextualized EM learning) must make identical
/// decisions — same development example selected every round, same tuned
/// percentile — under class-deduped and per-point validation scoring,
/// and the production run's serve path must be all-shared (zero
/// per-column vote memcpys, witnessed by the CoW counters).
#[test]
fn sessions_select_identically_under_both_dedup_paths() {
    let ds = toy_text(3);
    for seed in [5u64, 17] {
        let mut traces = Vec::new();
        let mut stats = Vec::new();
        for dedup in [PosteriorDedup::Class, PosteriorDedup::PerPoint] {
            let config = IdpConfig {
                n_iterations: 10,
                eval_every: 5,
                seed,
                label_model: LabelModelKind::Generative,
                ..Default::default()
            };
            let mut session = Session::new(&ds, config);
            let mut selector = SeuSelector::new();
            let mut user = SimulatedUser::default();
            let mut pipeline = ContextualizedPipeline::new(ContextualizerConfig {
                posterior_dedup: dedup,
                ..Default::default()
            });
            let mut trace = Vec::new();
            for _ in 0..10 {
                let rec = session.step(&mut selector, &mut user, &mut pipeline);
                trace.push((rec.selected, session.outputs().chosen_p));
            }
            trace.push((None, Some(session.test_score())));
            traces.push(trace);
            stats.push((
                pipeline.contextualizer().refine_cache_stats(),
                pipeline.contextualizer().tune_predicts(),
                session.lineage().len(),
            ));
        }
        assert_eq!(traces[0], traces[1], "seed {seed}: decisions diverged");
        let (class_stats, class_predicts, n_lfs) = stats[0];
        let (_, pp_predicts, _) = stats[1];
        assert!(
            class_predicts <= pp_predicts,
            "seed {seed}: class path predicted more often ({class_predicts} vs {pp_predicts})"
        );
        let grid = ContextualizerConfig::default().p_grid.len();
        assert_eq!(
            class_stats.refilters,
            grid * n_lfs,
            "seed {seed}: warm rounds refiltered cached columns"
        );
        assert_eq!(
            class_stats.shared_serves,
            2 * (class_stats.hits + class_stats.refilters),
            "seed {seed}: a served column bypassed the shared-handle path"
        );
        assert!(class_stats.hits > 0, "seed {seed}: cache never hit");
    }
}

/// The refinement caching switch and the dedup switch compose: all four
/// combinations agree on a repeated tune over a fixed lineage, and under
/// `Rebuild` no shared serves are recorded (the reference path builds
/// owned matrices).
#[test]
fn dedup_and_refinement_switches_compose() {
    let ds = toy_text(1);
    let mut rng = DetRng::new(77);
    let mut lineage = Lineage::new();
    let mut matrix = LabelMatrix::new(ds.train.n());
    for round in 0..6u32 {
        let z = rng.index(ds.n_primitives) as u32;
        let lf = PrimitiveLf::new(z, Label::from_bool(rng.bernoulli(0.5)));
        lineage.record(lf, rng.index(ds.train.n()) as u32, round);
        matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
    }
    let model = GenerativeModel::default();
    let mut results = Vec::new();
    for refinement in [RefinementCaching::Incremental, RefinementCaching::Rebuild] {
        for dedup in [PosteriorDedup::Class, PosteriorDedup::PerPoint] {
            let mut ctx = Contextualizer::new(ContextualizerConfig {
                refinement,
                posterior_dedup: dedup,
                ..Default::default()
            });
            ctx.sync(&lineage, &ds);
            let tuned = ctx.tune_p(&matrix, &ds, &model, ds.prior());
            if refinement == RefinementCaching::Rebuild {
                assert_eq!(
                    ctx.refine_cache_stats().shared_serves,
                    0,
                    "rebuild path must not record shared serves"
                );
            }
            results.push((tuned.p, tuned.valid_score.to_bits(), tuned.train_matrix));
        }
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0].0, pair[1].0, "tuned percentile diverged across switches");
        assert_eq!(pair[0].1, pair[1].1, "validation score diverged across switches");
        assert_eq!(pair[0].2, pair[1].2, "tuned matrix diverged across switches");
    }
}

//! Differential property suite for the sparse distance engine.
//!
//! Three kernels compute "one point vs all rows" distances: the naive
//! row-major scan (`sparse_point_to_all`), the inverted-index kernel
//! driven by a [`CscIndex`] (`sparse_point_to_all_indexed_into`), and the
//! batched parallel kernel (`sparse_point_to_all_many`). They are designed
//! to be bit-identical — each row's matching terms accumulate in ascending
//! column order in every tier — and this suite holds them to the issue's
//! 1e-9 agreement bound over random sparse matrices of varying density,
//! including all-zero rows and untouched columns, for both `Cosine` and
//! `Euclidean`.

use nemo::sparse::{CscIndex, CsrMatrix, Distance, DistanceScratch, SparseVec};
use proptest::prelude::*;

const DISTANCES: [Distance; 2] = [Distance::Cosine, Distance::Euclidean];

fn matrix_from(rows: &[Vec<(u32, f32)>], dim: usize) -> CsrMatrix {
    let svs: Vec<SparseVec> = rows.iter().map(|p| SparseVec::from_pairs(p.clone(), dim)).collect();
    CsrMatrix::from_rows(&svs, dim)
}

/// Row strategy producing matrices from fully empty to ~60% dense, with
/// signed values so entries can cancel to produce zero rows.
fn rows_strategy(
    dim: u32,
    max_nnz: usize,
    max_rows: usize,
) -> impl Strategy<Value = Vec<Vec<(u32, f32)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..dim, -4.0f32..4.0), 0..max_nnz),
        1..max_rows,
    )
}

fn check_all_kernels_agree(m: &CsrMatrix) {
    let norms = m.row_sq_norms();
    let index = CscIndex::from_csr(m);
    let mut scratch = DistanceScratch::new();
    let mut indexed = Vec::new();
    let pivots: Vec<usize> = (0..m.n_rows()).collect();
    for dist in DISTANCES {
        let batched = dist.sparse_point_to_all_many(m, &norms, &pivots, &index, &norms);
        for (pivot, batch_row) in batched.iter().enumerate() {
            let naive = dist.sparse_point_to_all(m, pivot, &norms);
            dist.sparse_point_to_all_indexed_into(
                m,
                &index,
                pivot,
                &norms,
                &mut scratch,
                &mut indexed,
            );
            assert_eq!(naive.len(), indexed.len());
            for (r, (&a, &b)) in naive.iter().zip(&indexed).enumerate() {
                assert!(a.is_finite() && b.is_finite(), "{dist:?} {pivot}->{r} not finite");
                assert!((a - b).abs() <= 1e-9, "{dist:?} {pivot}->{r}: naive {a} indexed {b}");
                let c = batch_row[r];
                assert!((a - c).abs() <= 1e-9, "{dist:?} {pivot}->{r}: naive {a} batched {c}");
            }
        }
    }
}

proptest! {
    /// Moderate dimension, density swept from empty to dense-ish.
    #[test]
    fn prop_kernels_agree_varying_density(rows in rows_strategy(24, 16, 14)) {
        check_all_kernels_agree(&matrix_from(&rows, 24));
    }

    /// High dimension, few nonzeros per row: the TF-IDF-like regime the
    /// indexed kernel is built for (most columns empty).
    #[test]
    fn prop_kernels_agree_very_sparse(rows in rows_strategy(96, 6, 12)) {
        check_all_kernels_agree(&matrix_from(&rows, 96));
    }

    /// Cross-matrix distances (train pivot vs valid pool): the indexed and
    /// batched kernels against the naive reference.
    #[test]
    fn prop_cross_matrix_kernels_agree(
        train in rows_strategy(32, 10, 8),
        valid in rows_strategy(32, 10, 8),
    ) {
        let tm = matrix_from(&train, 32);
        let vm = matrix_from(&valid, 32);
        let t_norms = tm.row_sq_norms();
        let v_norms = vm.row_sq_norms();
        let index = CscIndex::from_csr(&vm);
        let mut scratch = DistanceScratch::new();
        let mut indexed = Vec::new();
        let pivots: Vec<usize> = (0..tm.n_rows()).collect();
        for dist in DISTANCES {
            let batched = dist.sparse_point_to_all_many(&tm, &t_norms, &pivots, &index, &v_norms);
            for p in 0..tm.n_rows() {
                let pivot = tm.row(p);
                let naive = dist.sparse_row_to_all(&pivot, t_norms[p], &vm, &v_norms);
                dist.sparse_row_to_all_indexed_into(
                    &pivot,
                    t_norms[p],
                    &index,
                    &v_norms,
                    &mut scratch,
                    &mut indexed,
                );
                for (r, (&a, &b)) in naive.iter().zip(&indexed).enumerate() {
                    prop_assert!((a - b).abs() <= 1e-9, "{:?} {}->{}", dist, p, r);
                    prop_assert!((a - batched[p][r]).abs() <= 1e-9, "{:?} {}->{} batched", dist, p, r);
                }
            }
        }
    }

    /// Batched output must be ordered by pivot position, not pivot id,
    /// including repeated pivots.
    #[test]
    fn prop_batched_respects_pivot_order(
        rows in rows_strategy(24, 8, 10),
        picks in proptest::collection::vec(0usize..10, 1..20),
    ) {
        let m = matrix_from(&rows, 24);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let pivots: Vec<usize> = picks.into_iter().map(|p| p % m.n_rows()).collect();
        for dist in DISTANCES {
            let batched = dist.sparse_point_to_all_many(&m, &norms, &pivots, &index, &norms);
            prop_assert_eq!(batched.len(), pivots.len());
            for (k, &p) in pivots.iter().enumerate() {
                let naive = dist.sparse_point_to_all(&m, p, &norms);
                for (r, &b) in batched[k].iter().enumerate() {
                    prop_assert!((naive[r] - b).abs() <= 1e-9, "{:?} slot {} pivot {}", dist, k, p);
                }
            }
        }
    }
}

/// A handcrafted worst case the strategies might under-sample: every row
/// zero except one, plus a row whose entries cancel to zero.
#[test]
fn all_zero_and_cancelled_rows_agree_across_kernels() {
    let rows = vec![
        vec![],
        vec![(3u32, 2.0f32), (3, -2.0)], // cancels to a zero row
        vec![(0, 1.0), (5, 0.5)],
        vec![],
    ];
    check_all_kernels_agree(&matrix_from(&rows, 8));
}
